//! The admission controller: per-endpoint concurrency limits with a
//! bounded FIFO wait queue and explicit shed policies.
//!
//! This is the server-side twin of the refit pipeline's bounded queues
//! (PR 7): work beyond the concurrency limit waits in a bounded queue,
//! and a full queue sheds — [`ShedPolicy::RejectNewest`] bounces the
//! arriving request, [`ShedPolicy::DropOldest`] evicts the
//! longest-waiting one in its favor (its waiter is answered 503, not
//! abandoned). Waiters also give up on their own when their request
//! deadline (or the configured queue-wait cap) expires, so a stalled
//! backend converts to clean 503s instead of thread pile-up.
//!
//! Grants are RAII [`Permit`]s: a panic anywhere downstream releases the
//! slot on unwind, so containment (`catch_unwind` in the connection
//! handler) never leaks concurrency.
//!
//! [`Priority::Critical`] requests (health/stats probes) never enter
//! admission at all — that is the "always served under full shed"
//! guarantee, enforced by construction in the router.

use cpr_registry::ShedPolicy;
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Request priority classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Health/stats probes: bypass admission, served even under full
    /// shed — the operator's view must never be a casualty of overload.
    Critical,
    /// Prediction traffic: subject to admission control.
    Normal,
}

/// Admission limits for the prediction endpoint.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Requests computing concurrently.
    pub max_concurrent: usize,
    /// Requests waiting for a slot; beyond this the shed policy fires.
    pub max_queue: usize,
    /// What to do with an arrival when the wait queue is full.
    pub shed_policy: ShedPolicy,
    /// Cap on queue wait independent of the request deadline — overload
    /// turns into fast 503s, not slow ones.
    pub queue_timeout: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_concurrent: 4,
            max_queue: 8,
            shed_policy: ShedPolicy::RejectNewest,
            queue_timeout: Duration::from_millis(500),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TicketState {
    Waiting,
    Admitted,
    Dropped,
}

struct AdmState {
    active: usize,
    queue: VecDeque<u64>,
    tickets: HashMap<u64, TicketState>,
    next_ticket: u64,
}

impl AdmState {
    /// Hand freed slots to the queue head(s), FIFO.
    fn promote(&mut self, max_concurrent: usize) {
        while self.active < max_concurrent {
            let Some(t) = self.queue.pop_front() else {
                break;
            };
            self.active += 1;
            self.tickets.insert(t, TicketState::Admitted);
        }
    }
}

/// What [`Admission::admit`] decided.
pub enum Admit<'a> {
    /// A concurrency slot is held until the permit drops.
    Granted(Permit<'a>),
    /// The wait queue was full ([`ShedPolicy::RejectNewest`]).
    QueueFull,
    /// This waiter was evicted by a newer arrival
    /// ([`ShedPolicy::DropOldest`]).
    DroppedByNewer,
    /// The wait deadline passed before a slot freed.
    TimedOut,
}

/// RAII concurrency slot; dropping releases it and promotes a waiter.
pub struct Permit<'a> {
    adm: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.adm.state.lock().expect("admission poisoned");
        st.active -= 1;
        st.promote(self.adm.cfg.max_concurrent);
        self.adm.cv.notify_all();
    }
}

/// The controller. One instance gates the prediction endpoint.
pub struct Admission {
    cfg: AdmissionConfig,
    state: Mutex<AdmState>,
    cv: Condvar,
}

impl Admission {
    pub fn new(cfg: AdmissionConfig) -> Self {
        Self {
            cfg,
            state: Mutex::new(AdmState {
                active: 0,
                queue: VecDeque::new(),
                tickets: HashMap::new(),
                next_ticket: 0,
            }),
            cv: Condvar::new(),
        }
    }

    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// (currently computing, currently queued).
    pub fn depth(&self) -> (usize, usize) {
        let st = self.state.lock().expect("admission poisoned");
        (st.active, st.queue.len())
    }

    /// Try to take a slot, waiting in the bounded queue until
    /// `wait_deadline` at the latest. Callers pre-clamp the deadline
    /// with [`AdmissionConfig::queue_timeout`].
    pub fn admit(&self, wait_deadline: Instant) -> Admit<'_> {
        let mut st = self.state.lock().expect("admission poisoned");
        if st.active < self.cfg.max_concurrent && st.queue.is_empty() {
            st.active += 1;
            return Admit::Granted(Permit { adm: self });
        }
        if st.queue.len() >= self.cfg.max_queue {
            match self.cfg.shed_policy {
                ShedPolicy::RejectNewest => return Admit::QueueFull,
                ShedPolicy::DropOldest => match st.queue.pop_front() {
                    Some(old) => {
                        st.tickets.insert(old, TicketState::Dropped);
                        self.cv.notify_all();
                    }
                    // max_queue == 0: nothing to evict, nothing to join.
                    None => return Admit::QueueFull,
                },
            }
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.tickets.insert(ticket, TicketState::Waiting);
        st.queue.push_back(ticket);
        loop {
            match st.tickets.get(&ticket).copied() {
                Some(TicketState::Admitted) => {
                    st.tickets.remove(&ticket);
                    return Admit::Granted(Permit { adm: self });
                }
                Some(TicketState::Dropped) => {
                    st.tickets.remove(&ticket);
                    return Admit::DroppedByNewer;
                }
                _ => {}
            }
            let now = Instant::now();
            if now >= wait_deadline {
                // Give up. If a slot landed between the state check and
                // here we would have seen Admitted above; still Waiting
                // means we are in the queue and must leave it.
                st.tickets.remove(&ticket);
                st.queue.retain(|&t| t != ticket);
                return Admit::TimedOut;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(st, wait_deadline - now)
                .expect("admission poisoned");
            st = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Barrier};

    fn cfg(max_concurrent: usize, max_queue: usize, policy: ShedPolicy) -> AdmissionConfig {
        AdmissionConfig {
            max_concurrent,
            max_queue,
            shed_policy: policy,
            queue_timeout: Duration::from_secs(5),
        }
    }

    fn far() -> Instant {
        Instant::now() + Duration::from_secs(5)
    }

    #[test]
    fn grants_up_to_the_limit_then_queues_then_sheds() {
        let adm = Admission::new(cfg(2, 1, ShedPolicy::RejectNewest));
        let a = adm.admit(far());
        let b = adm.admit(far());
        assert!(matches!(a, Admit::Granted(_)));
        assert!(matches!(b, Admit::Granted(_)));
        assert_eq!(adm.depth(), (2, 0));
        // Third must wait; fill the queue from another thread, then a
        // fourth arrival bounces.
        let adm = Arc::new(Admission::new(cfg(1, 1, ShedPolicy::RejectNewest)));
        let held = adm.admit(far());
        assert!(matches!(held, Admit::Granted(_)));
        let waiter = {
            let adm = Arc::clone(&adm);
            std::thread::spawn(move || matches!(adm.admit(far()), Admit::Granted(_)))
        };
        while adm.depth().1 != 1 {
            std::thread::yield_now();
        }
        assert!(matches!(adm.admit(far()), Admit::QueueFull));
        drop(held);
        assert!(waiter.join().unwrap(), "queued waiter must get the slot");
    }

    #[test]
    fn drop_oldest_evicts_the_longest_waiter() {
        let adm = Arc::new(Admission::new(cfg(1, 1, ShedPolicy::DropOldest)));
        let held = adm.admit(far());
        assert!(matches!(held, Admit::Granted(_)));
        let evicted = {
            let adm = Arc::clone(&adm);
            std::thread::spawn(move || matches!(adm.admit(far()), Admit::DroppedByNewer))
        };
        while adm.depth().1 != 1 {
            std::thread::yield_now();
        }
        // This arrival evicts the queued waiter and takes its place.
        let winner = {
            let adm = Arc::clone(&adm);
            std::thread::spawn(move || matches!(adm.admit(far()), Admit::Granted(_)))
        };
        assert!(evicted.join().unwrap(), "oldest waiter must see Dropped");
        drop(held);
        assert!(
            winner.join().unwrap(),
            "newest arrival must inherit the slot"
        );
    }

    #[test]
    fn expired_wait_deadline_times_out_cleanly() {
        let adm = Admission::new(cfg(1, 4, ShedPolicy::RejectNewest));
        let _held = adm.admit(far());
        let t0 = Instant::now();
        let r = adm.admit(Instant::now() + Duration::from_millis(30));
        assert!(matches!(r, Admit::TimedOut));
        assert!(t0.elapsed() >= Duration::from_millis(25));
        assert_eq!(adm.depth().1, 0, "timed-out waiter must leave the queue");
    }

    #[test]
    fn zero_queue_drop_oldest_cannot_grow_the_queue() {
        let adm = Admission::new(cfg(1, 0, ShedPolicy::DropOldest));
        let _held = adm.admit(far());
        assert!(matches!(adm.admit(far()), Admit::QueueFull));
        assert_eq!(adm.depth(), (1, 0));
    }

    #[test]
    fn permits_release_on_panic_unwind() {
        let adm = Arc::new(Admission::new(cfg(1, 0, ShedPolicy::RejectNewest)));
        let adm2 = Arc::clone(&adm);
        let _ = std::panic::catch_unwind(move || {
            let _p = adm2.admit(far());
            panic!("contained");
        });
        assert_eq!(adm.depth(), (0, 0));
        assert!(matches!(adm.admit(far()), Admit::Granted(_)));
    }

    #[test]
    fn concurrency_never_exceeds_the_limit() {
        const LIMIT: usize = 3;
        let adm = Arc::new(Admission::new(cfg(LIMIT, 64, ShedPolicy::RejectNewest)));
        let live = Arc::new(AtomicUsize::new(0));
        let start = Arc::new(Barrier::new(16));
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let adm = Arc::clone(&adm);
                let live = Arc::clone(&live);
                let start = Arc::clone(&start);
                std::thread::spawn(move || {
                    start.wait();
                    for _ in 0..50 {
                        if let Admit::Granted(p) = adm.admit(far()) {
                            let n = live.fetch_add(1, Ordering::SeqCst) + 1;
                            assert!(n <= LIMIT, "{n} concurrent holders");
                            std::thread::yield_now();
                            live.fetch_sub(1, Ordering::SeqCst);
                            drop(p);
                        } else {
                            panic!("queue of 64 should absorb 16 threads");
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(adm.depth(), (0, 0));
    }
}
