//! The observability endpoints under fire: `/metrics` must be valid
//! Prometheus text exposition whose `cpr_server_*` totals satisfy the
//! accounting identity at *every* scrape — under a deadline-zero flood,
//! concurrent with one, and during drain — and `/events` must replay
//! the lifecycle trace with `since` filtering.

mod common;

use common::{key_of, small_fleet, start, workload};
use cpr_obs::Histogram;
use cpr_server::chaos::ChaosClient;
use cpr_server::{retry_after_ms, ClientConn, ServerConfig};
use std::collections::HashMap;
use std::time::Duration;

/// Structural validation of a Prometheus 0.0.4 text exposition body:
/// every line is a `# TYPE` header or a `name[{labels}] value` sample,
/// histogram bucket series are cumulative and end at `+Inf == _count`.
/// Returns the simple (counter/gauge) samples by name.
fn assert_valid_exposition(text: &str) -> HashMap<String, u64> {
    let mut simple = HashMap::new();
    let mut hist_buckets: HashMap<String, Vec<(String, u64)>> = HashMap::new();
    let mut hist_counts: HashMap<String, u64> = HashMap::new();
    let mut typed = 0usize;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut f = rest.split(' ');
            let (name, kind) = (f.next().unwrap_or(""), f.next().unwrap_or(""));
            assert!(
                !name.is_empty() && f.next().is_none(),
                "bad TYPE line {line:?}"
            );
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "bad kind in {line:?}"
            );
            typed += 1;
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("sample line must split");
        let v: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("bad value in {line:?}"));
        if let Some(series) = name.strip_suffix("\"}") {
            let (family, le) = series
                .split_once("_bucket{le=\"")
                .unwrap_or_else(|| panic!("labeled non-bucket sample {line:?}"));
            hist_buckets
                .entry(family.to_string())
                .or_default()
                .push((le.to_string(), v as u64));
        } else if let Some(family) = name.strip_suffix("_count") {
            hist_counts.insert(family.to_string(), v as u64);
        } else if name.ends_with("_sum") {
            // advisory; nothing structural to pin
        } else {
            simple.insert(name.to_string(), v as u64);
        }
    }
    assert!(typed > 0, "no # TYPE lines in scrape");
    for (family, buckets) in &hist_buckets {
        assert!(
            buckets.windows(2).all(|w| w[0].1 <= w[1].1),
            "{family} buckets not cumulative: {buckets:?}"
        );
        let (last_le, last) = buckets.last().unwrap();
        assert_eq!(last_le, "+Inf", "{family} must end at +Inf");
        assert_eq!(
            Some(last),
            hist_counts.get(family),
            "{family}_count must equal the +Inf bucket"
        );
    }
    simple
}

/// The exported-counter form of the accounting identity.
fn assert_exported_identity(m: &HashMap<String, u64>) {
    let g = |k: &str| m.get(k).copied().unwrap_or_else(|| panic!("missing {k}"));
    assert_eq!(
        g("cpr_server_accepted_total")
            + g("cpr_server_shed_queue_full_total")
            + g("cpr_server_shed_deadline_total")
            + g("cpr_server_rejected_malformed_total"),
        g("cpr_server_received_total"),
        "exported identity broken: {m:?}"
    );
}

#[test]
fn metrics_scrape_is_valid_and_matches_stats_after_a_flood() {
    let models = small_fleet();
    let server = start(&models, ServerConfig::default());
    let client = ChaosClient::new(server.local_addr());

    // Real traffic, then a full deadline-zero shed flood.
    for (who, x) in workload(&models, 20, 41) {
        let r = client
            .predict(key_of(&models[who]), std::slice::from_ref(&x), None)
            .unwrap();
        assert_eq!(r.status, 200);
    }
    for (who, x) in workload(&models, 30, 43) {
        let r = client
            .predict(key_of(&models[who]), std::slice::from_ref(&x), Some(0))
            .unwrap();
        assert_eq!(r.status, 503, "deadline-zero must shed");
    }

    let before = server.stats();
    let exported = assert_valid_exposition(&client.metrics().unwrap());
    assert_exported_identity(&exported);
    // The scrape is the state `/stats` saw the instant before it.
    assert_eq!(exported["cpr_server_received_total"], before.received);
    assert_eq!(exported["cpr_server_accepted_total"], before.accepted);
    assert_eq!(
        exported["cpr_server_shed_deadline_total"],
        before.shed_deadline
    );
    assert_eq!(exported["cpr_server_shed_deadline_total"], 30);
    // Whole-stack hub: registry and pipeline families export alongside.
    assert!(exported.contains_key("cpr_registry_dense_hits_total"));
    assert!(server.stats().identity_holds());
}

#[test]
fn metrics_hold_the_identity_in_every_scrape_concurrent_with_a_flood() {
    let models = small_fleet();
    let server = start(&models, ServerConfig::default());
    let addr = server.local_addr();
    let stop = std::sync::atomic::AtomicBool::new(false);

    std::thread::scope(|s| {
        for seed in 0..3u64 {
            let (models, stop) = (&models, &stop);
            s.spawn(move || {
                let client = ChaosClient::new(addr);
                let load = workload(models, 400, 59 + seed);
                for (who, x) in load {
                    if stop.load(std::sync::atomic::Ordering::Relaxed) {
                        break;
                    }
                    let _ = client.predict(key_of(&models[who]), &[x], Some(0));
                }
            });
        }
        let client = ChaosClient::new(addr);
        for _ in 0..25 {
            let exported = assert_valid_exposition(&client.metrics().unwrap());
            assert_exported_identity(&exported);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    assert!(server.stats().identity_holds());
}

#[test]
fn metrics_and_events_answer_during_drain() {
    let models = small_fleet();
    let server = start(&models, ServerConfig::default());
    let addr = server.local_addr();
    let registry = server.registry();

    // Park two workers on live keep-alive connections *before* drain.
    let mut metrics_conn = ClientConn::open(addr).unwrap();
    let mut events_conn = ClientConn::open(addr).unwrap();
    assert_eq!(
        metrics_conn
            .request("GET", "/health", &[], b"")
            .unwrap()
            .status,
        200
    );
    assert_eq!(
        events_conn
            .request("GET", "/health", &[], b"")
            .unwrap()
            .status,
        200
    );

    let drainer = std::thread::spawn(move || server.drain());
    // Drain is now blocked joining the workers parked on our conns.
    std::thread::sleep(Duration::from_millis(150));

    let m = metrics_conn.request("GET", "/metrics", &[], b"").unwrap();
    assert_eq!(m.status, 200, "/metrics must answer during drain");
    let exported = assert_valid_exposition(std::str::from_utf8(&m.body).unwrap());
    assert_exported_identity(&exported);

    let e = events_conn
        .request("GET", "/events?since=0", &[], b"")
        .unwrap();
    assert_eq!(e.status, 200, "/events must answer during drain");
    let body = String::from_utf8_lossy(&e.body).to_string();
    assert!(
        body.lines().any(|l| l.contains(" drain ")),
        "drain event missing from {body:?}"
    );

    // Both responses forced close (shutdown); drain completes cleanly.
    let report = drainer.join().unwrap();
    assert!(report.final_stats.identity_holds());
    assert!(registry
        .obs()
        .events()
        .since(0)
        .iter()
        .any(|ev| ev.kind == cpr_obs::EventKind::Drain));
}

#[test]
fn events_filter_by_since_and_reject_bad_queries() {
    let models = small_fleet();
    let server = start(&models, ServerConfig::default());
    let client = ChaosClient::new(server.local_addr());

    // Provoke a shed: a deadline-zero request records a Shed event.
    let (who, x) = &workload(&models, 1, 71)[0];
    let r = client
        .predict(key_of(&models[*who]), std::slice::from_ref(x), Some(0))
        .unwrap();
    assert_eq!(r.status, 503);

    let all = client.events(0).unwrap();
    assert!(
        all.iter().any(|(_, kind, _)| kind == "shed"),
        "shed event missing: {all:?}"
    );
    let last = all.last().unwrap().0;
    assert!(client.events(last).unwrap().is_empty());
    // Tail filtering returns exactly the events after the cut.
    if all.len() >= 2 {
        let tail = client.events(all[all.len() - 2].0).unwrap();
        assert_eq!(tail, all[all.len() - 1..].to_vec());
    }

    for bad in ["/events?since=banana", "/events?since=-1", "/events?q=1"] {
        let resp = client.request("GET", bad, &[], b"").unwrap();
        assert_eq!(resp.status, 400, "{bad} must be rejected");
    }
    assert!(server.stats().identity_holds());
}

/// Satellite regression: the `x-cpr-retry-after-ms` hint — now the
/// request-latency histogram's p50 times the queue depth — must be
/// monotone under growing load on both axes (deeper queue, slower
/// service), exactly like the EWMA it replaced, without its decay
/// non-monotonicity.
#[test]
fn retry_hint_is_monotone_under_growing_load() {
    let mut last = 0u64;
    // Slower and slower observed service profiles...
    for scale in [100u64, 1_000, 10_000, 100_000] {
        let h = Histogram::new();
        for i in 0..100 {
            h.record(scale + i);
        }
        let p50_ms = h.quantile(0.5) as f64 / 1e3;
        // ...and deeper and deeper admission queues.
        let mut last_depth = 0u64;
        for depth in [0usize, 1, 4, 16, 64] {
            let hint = retry_after_ms(depth, p50_ms);
            assert!((10..=5_000).contains(&hint));
            assert!(
                hint >= last_depth,
                "hint fell {last_depth} -> {hint} at depth {depth}"
            );
            last_depth = hint;
        }
        let base = retry_after_ms(4, p50_ms);
        assert!(base >= last, "hint fell {last} -> {base} at scale {scale}");
        last = base;
    }
}
