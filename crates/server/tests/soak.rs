//! Mixed-traffic soak: good traffic (bitwise-verified), chaos traffic,
//! deadline-zero floods, and background refit churn hammer one server
//! for `CPR_SOAK_SECS` (default 2, CI runs 30) while a sampler pins the
//! accounting identity on every snapshot and resource probes pin
//! fd/RSS growth. Ends with a lossless drain and a restart-recovery
//! check.

mod common;

use common::{fd_count, id_of, key_of, registry_of, rss_kb, small_fleet, workload};
use cpr_core::{CprBuilder, Dataset, StreamingCpr};
use cpr_grid::{ParamSpace, ParamSpec};
use cpr_registry::{ModelId, ModelRegistry, PipelineConfig, RefitPipeline};
use cpr_server::chaos::ChaosClient;
use cpr_server::{CprServer, ServerConfig};
use cpr_store::{FleetStore, MemFs};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn soak_secs() -> u64 {
    std::env::var("CPR_SOAK_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

fn churn_space() -> ParamSpace {
    ParamSpace::new(vec![
        ParamSpec::log("m", 32.0, 2048.0),
        ParamSpec::log("n", 32.0, 2048.0),
    ])
}

fn churn_telemetry(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Dataset::new();
    for _ in 0..n {
        let m = 32.0 * 64.0_f64.powf(rng.gen::<f64>());
        let nn = 32.0 * 64.0_f64.powf(rng.gen::<f64>());
        data.push(vec![m, nn], 1e-4 * m.powf(1.3) * nn.powf(0.7));
    }
    data
}

fn churn_trainer(seed: u64) -> StreamingCpr {
    let builder = CprBuilder::new(churn_space())
        .cells_per_dim(6)
        .rank(2)
        .regularization(1e-7)
        .seed(seed);
    StreamingCpr::fit(&builder, &churn_telemetry(80, seed)).unwrap()
}

fn churn_id(i: usize) -> ModelId {
    ModelId::new(format!("churn-{i}"), "soak", "time")
}

#[test]
fn mixed_traffic_soak_with_refit_churn() {
    const CHURN_MODELS: usize = 3;
    let duration = Duration::from_secs(soak_secs());
    let models = small_fleet();

    let fs = Arc::new(MemFs::new());
    let store = Arc::new(FleetStore::open(fs.clone()).unwrap());
    let registry = registry_of(&models);
    let pipeline = RefitPipeline::new(
        Arc::clone(&registry),
        PipelineConfig {
            workers: 2,
            retry_backoff: Duration::from_millis(1),
            retry_backoff_max: Duration::from_millis(10),
            ..PipelineConfig::default()
        },
    );
    for i in 0..CHURN_MODELS {
        pipeline.track(churn_id(i), churn_trainer(1000 + i as u64));
    }
    let server = Arc::new(
        CprServer::bind_with_store(
            "127.0.0.1:0",
            Arc::clone(&registry),
            Some(Arc::clone(&store)),
            ServerConfig::default(),
        )
        .unwrap(),
    );
    let addr = server.local_addr();

    let fd_start = fd_count();
    let rss_start = rss_kb();
    let stop = Arc::new(AtomicBool::new(false));
    let good_served = Arc::new(AtomicU64::new(0));
    let mut threads = Vec::new();

    // Good traffic: stable fleet models are never refitted, so every 200
    // must be bitwise-equal to direct registry serving, for the whole soak.
    for t in 0..2u64 {
        let registry = Arc::clone(&registry);
        let models = models.clone();
        let stop = Arc::clone(&stop);
        let served = Arc::clone(&good_served);
        threads.push(std::thread::spawn(move || {
            let client = ChaosClient::new(addr);
            let mut round = 0u64;
            while !stop.load(Ordering::Acquire) {
                for (who, x) in workload(&models, 16, 1000 * t + round) {
                    let f = &models[who];
                    let resp = client
                        .predict(key_of(f), std::slice::from_ref(&x), Some(5_000))
                        .unwrap();
                    assert!(
                        resp.status == 200 || resp.status == 503,
                        "good traffic got {}",
                        resp.status
                    );
                    if resp.status == 200 {
                        let want = registry.predict(&id_of(f), &x).unwrap();
                        assert_eq!(
                            resp.predictions()[0].to_bits(),
                            want.to_bits(),
                            "soak answer drifted from the registry"
                        );
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                }
                round += 1;
            }
        }));
    }

    // Churn traffic: models being hot-swapped underneath must still give
    // clean finite answers (a swap is atomic — never a torn model).
    {
        let stop = Arc::clone(&stop);
        threads.push(std::thread::spawn(move || {
            let client = ChaosClient::new(addr);
            let mut rng = StdRng::seed_from_u64(77);
            while !stop.load(Ordering::Acquire) {
                let i = rng.gen_range(0..CHURN_MODELS);
                let app = format!("churn-{i}");
                let q = vec![
                    32.0 * 64.0_f64.powf(rng.gen::<f64>()),
                    32.0 * 64.0_f64.powf(rng.gen::<f64>()),
                ];
                let resp = client
                    .predict((&app, "soak", "time"), &[q], Some(5_000))
                    .unwrap();
                assert!(resp.status == 200 || resp.status == 503);
                if resp.status == 200 {
                    assert!(resp.predictions()[0].is_finite());
                }
            }
        }));
    }

    // Chaos: every client-side fault shape, on repeat.
    {
        let stop = Arc::clone(&stop);
        let f = models[0].clone();
        threads.push(std::thread::spawn(move || {
            let client = ChaosClient::new(addr);
            let path = format!("/predict/{}/{}/{}", f.app, f.machine, f.metric);
            while !stop.load(Ordering::Acquire) {
                let _ = client.disconnect_after(b"POST /predict/x HTT");
                let _ = client.raw_status(b"JUNK FRAME\r\n\r\n");
                let _ = client.request("POST", &path, &[], b"not floats");
                let _ = client.predict(key_of(&f), &[vec![1.0, 1.0, 1.0]], Some(0));
                assert_eq!(client.health().unwrap(), "ok");
                std::thread::sleep(Duration::from_millis(5));
            }
        }));
    }

    // Refit churn: keep submitting telemetry so swaps land mid-serving.
    let refit = {
        let stop = Arc::clone(&stop);
        let pipeline = Arc::new(pipeline);
        let handle = Arc::clone(&pipeline);
        threads.push(std::thread::spawn(move || {
            let mut seed = 0u64;
            while !stop.load(Ordering::Acquire) {
                for i in 0..CHURN_MODELS {
                    let _ = handle.submit(&churn_id(i), &churn_telemetry(60, 5000 + seed));
                    seed += 1;
                }
                handle.wait_idle();
            }
        }));
        pipeline
    };

    // Sampler: the identity must hold on every snapshot all soak long,
    // and resources must stay bounded *during* the run, not just after.
    {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        threads.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                let s = server.stats();
                assert!(s.identity_holds(), "identity broke mid-soak: {s:?}");
                let rss = rss_kb();
                assert!(
                    rss_start == 0 || rss < rss_start + 512 * 1024,
                    "RSS grew unbounded: {rss_start} -> {rss} KiB"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }));
    }

    std::thread::sleep(duration);
    stop.store(true, Ordering::Release);
    for t in threads {
        t.join().unwrap();
    }
    match Arc::try_unwrap(refit) {
        Ok(p) => p.shutdown(),
        Err(_) => panic!("refit pipeline still shared"),
    }

    let s = server.stats();
    assert!(s.identity_holds(), "{s:?}");
    assert!(
        good_served.load(Ordering::Relaxed) > 0,
        "soak must actually have served good traffic"
    );
    assert!(s.rejected_malformed > 0, "chaos must actually have fired");
    assert!(s.shed_deadline > 0);

    // Sockets from the whole soak do not accumulate.
    let deadline = Instant::now() + Duration::from_secs(5);
    while fd_count() > fd_start + 16 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        fd_count() <= fd_start + 16,
        "fd leak: {} -> {}",
        fd_start,
        fd_count()
    );

    // Lossless exit: drain, then a cold restart recovers every model —
    // the stable fleet bitwise, the churned ones as last committed.
    let server = Arc::try_unwrap(server).ok().expect("server still shared");
    let report = server.drain();
    assert_eq!(report.snapshot_error, None);
    assert!(report.final_stats.identity_holds());
    let generation = report.snapshot_generation.expect("drain must flush");

    let restored = ModelRegistry::new();
    let rr = restored.restore(&FleetStore::open(fs).unwrap()).unwrap();
    assert_eq!(rr.generation, generation);
    assert_eq!(rr.restored.len(), models.len() + CHURN_MODELS);
    for (who, x) in workload(&models, 20, 3) {
        let id = id_of(&models[who]);
        assert_eq!(
            restored.predict(&id, &x).unwrap().to_bits(),
            registry.predict(&id, &x).unwrap().to_bits()
        );
    }
    for i in 0..CHURN_MODELS {
        let y = restored.predict(&churn_id(i), &[100.0, 100.0]).unwrap();
        assert!(y.is_finite());
    }
}
