//! Fuzz-style property tests over the server's trust-boundary parsers
//! ([`parse_head`], [`parse_model_path`], [`parse_query_body`]) on
//! arbitrary bytes: every input yields a clean `Ok`/`Err` — never a
//! panic, and never an output allocation that is not bounded by the
//! (capped) input length. A final live-server pass fires raw fuzz
//! frames at a real socket and checks the 400-or-valid contract plus
//! never-stop-serving end to end.

mod common;

use common::{assert_still_serving, small_fleet, start, workload};
use cpr_server::chaos::ChaosClient;
use cpr_server::http::{content_length, parse_head, parse_model_path, parse_query_body};
use cpr_server::{Limits, ServerConfig};
use proptest::prelude::*;
use std::time::Duration;

fn fuzz_bytes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..=255u8, 0..max_len)
}

/// Bytes biased toward HTTP-looking structure so the deeper parser
/// paths (header loops, content-length, path validation) get exercised,
/// not just the request-line reject.
fn httpish(rng_lines: usize) -> impl Strategy<Value = Vec<u8>> {
    let fragment = (0usize..8, proptest::collection::vec(0x20u8..=0x7eu8, 0..24)).prop_map(
        |(kind, mut raw)| match kind {
            0 => b"GET /health HTTP/1.1".to_vec(),
            1 => b"POST /predict/a/b/c HTTP/1.1".to_vec(),
            2 => {
                let mut l = b"content-length: ".to_vec();
                l.extend_from_slice(&raw);
                l
            }
            3 => {
                let mut l = b"x-cpr-deadline-ms: ".to_vec();
                l.extend_from_slice(&raw);
                l
            }
            4 => {
                raw.insert(0, b':');
                raw
            }
            5 => b"connection: close".to_vec(),
            _ => raw,
        },
    );
    proptest::collection::vec(fragment, 0..rng_lines).prop_map(|lines| {
        let mut out = Vec::new();
        for l in lines {
            out.extend_from_slice(&l);
            out.extend_from_slice(b"\r\n");
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parse_head_never_panics_and_bounds_its_output(bytes in fuzz_bytes(2048)) {
        let limits = Limits::default();
        if let Ok(head) = parse_head(&bytes, &limits) {
            prop_assert!(head.headers.len() <= limits.max_headers);
            prop_assert!(head.path.len() <= bytes.len());
            let header_bytes: usize =
                head.headers.iter().map(|(n, v)| n.len() + v.len()).sum();
            prop_assert!(header_bytes <= bytes.len());
            // Whatever parsed must also survive content-length checking.
            let _ = content_length(&head, &limits);
        }
    }

    #[test]
    fn parse_head_on_httpish_frames(bytes in httpish(12)) {
        let limits = Limits::default();
        if let Ok(head) = parse_head(&bytes, &limits) {
            prop_assert!(head.headers.len() <= limits.max_headers);
            let _ = content_length(&head, &limits);
        }
    }

    #[test]
    fn tiny_limits_are_still_safe(
        bytes in fuzz_bytes(256),
        max_head in 0usize..64,
        max_headers in 0usize..4,
    ) {
        let limits = Limits {
            max_head_bytes: max_head,
            max_headers,
            max_body_bytes: 16,
        };
        if let Ok(head) = parse_head(&bytes, &limits) {
            prop_assert!(head.headers.len() <= max_headers);
            prop_assert!(bytes.len() <= max_head);
        }
    }

    #[test]
    fn parse_model_path_never_panics(bytes in fuzz_bytes(512)) {
        // The router only feeds it &str, so fuzz the str subset.
        if let Ok(path) = std::str::from_utf8(&bytes) {
            if let Some((app, machine, metric)) = parse_model_path(path) {
                prop_assert!(!app.is_empty() && !machine.is_empty() && !metric.is_empty());
                prop_assert!(path.starts_with("/predict/"));
                prop_assert!(app.len() + machine.len() + metric.len() < path.len());
            }
        }
    }

    #[test]
    fn parse_query_body_never_panics_and_bounds_its_output(bytes in fuzz_bytes(4096)) {
        if let Ok(queries) = parse_query_body(&bytes) {
            prop_assert!(!queries.is_empty());
            // One coordinate costs at least one input byte: the total
            // parse output is bounded by the input length.
            let coords: usize = queries.iter().map(Vec::len).sum();
            prop_assert!(coords <= bytes.len());
            prop_assert!(queries.len() <= bytes.len());
        }
    }

    #[test]
    fn float_shaped_bodies_round_trip(
        rows in proptest::collection::vec(
            proptest::collection::vec(-1.0e12f64..1.0e12, 1..6),
            1..8,
        )
    ) {
        let mut body = String::new();
        for row in &rows {
            let line: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
            body.push_str(&line.join(" "));
            body.push('\n');
        }
        let parsed = parse_query_body(body.as_bytes()).expect("well-formed body");
        prop_assert_eq!(parsed.len(), rows.len());
        for (got, want) in parsed.iter().zip(&rows) {
            for (g, w) in got.iter().zip(want) {
                prop_assert_eq!(g.to_bits(), w.to_bits());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The live-socket version of the contract: raw fuzz frames get a
    /// response or a clean close — the server never dies, and keeps
    /// serving well-formed traffic afterwards.
    #[test]
    fn live_server_survives_raw_fuzz_frames(
        frames in proptest::collection::vec((fuzz_bytes(96), 0usize..2), 1..4)
    ) {
        let models = small_fleet();
        let cfg = ServerConfig {
            // Frames without a terminator should time out fast, not
            // stall the fuzz loop on the full default budget.
            read_budget: Duration::from_millis(100),
            ..ServerConfig::default()
        };
        let server = start(&models, cfg);
        let client = ChaosClient::new(server.local_addr());
        for (mut frame, terminated) in frames {
            if terminated == 1 {
                frame.extend_from_slice(b"\r\n\r\n");
            }
            let answer = client.send_raw(&frame).expect("connect must work");
            if let Some(status) = client_status(&answer) {
                prop_assert!(
                    (400..=599).contains(&status) || status == 200,
                    "fuzz frame answered {status}"
                );
            }
        }
        prop_assert!(server.stats().identity_holds());
        assert_still_serving(&server, &models, &workload(&models, 3, 97));
    }
}

fn client_status(raw: &[u8]) -> Option<u16> {
    let text = std::str::from_utf8(raw).ok()?;
    text.strip_prefix("HTTP/1.1 ")?.get(..3)?.parse().ok()
}
