//! Shared plumbing for the server integration suite: fleet-backed
//! servers on ephemeral ports, the reference equality check every chaos
//! scenario re-runs, and Linux resource probes for the bounded-fd/RSS
//! assertions.
//!
//! Each integration test binary compiles its own copy, so not every
//! helper is used from every binary.
#![allow(dead_code)]

use cpr_bench::fixtures::{fleet, fleet_queries, FleetModel};
use cpr_registry::{ModelId, ModelRegistry};
use cpr_server::chaos::ChaosClient;
use cpr_server::{CprServer, ServerConfig};
use std::sync::Arc;

pub fn id_of(f: &FleetModel) -> ModelId {
    ModelId::new(f.app.clone(), f.machine.clone(), f.metric.clone())
}

pub fn key_of(f: &FleetModel) -> (&str, &str, &str) {
    (&f.app, &f.machine, &f.metric)
}

pub fn registry_of(models: &[FleetModel]) -> Arc<ModelRegistry> {
    let registry = Arc::new(ModelRegistry::new());
    for f in models {
        registry.insert(id_of(f), f.model.clone());
    }
    registry
}

/// A served fleet on an ephemeral loopback port.
pub fn start(models: &[FleetModel], cfg: ServerConfig) -> CprServer {
    CprServer::bind("127.0.0.1:0", registry_of(models), cfg).expect("bind ephemeral")
}

/// A deterministic well-formed workload over `models`.
pub fn workload(models: &[FleetModel], n: usize, seed: u64) -> Vec<(usize, Vec<f64>)> {
    fleet_queries(models.len(), n, seed)
}

/// The never-stop-serving check: every well-formed in-budget request is
/// answered 200 with predictions **bitwise equal** to direct registry
/// serving, and the accounting identity holds. Chaos scenarios call
/// this after every fault.
pub fn assert_still_serving(
    server: &CprServer,
    models: &[FleetModel],
    queries: &[(usize, Vec<f64>)],
) {
    let client = ChaosClient::new(server.local_addr());
    let registry = server.registry();
    for (who, x) in queries {
        let f = &models[*who];
        let resp = client
            .predict(key_of(f), std::slice::from_ref(x), None)
            .expect("well-formed request must get a response");
        assert_eq!(
            resp.status,
            200,
            "body: {:?}",
            String::from_utf8_lossy(&resp.body)
        );
        let got = resp.predictions();
        assert_eq!(got.len(), 1);
        let want = registry.predict(&id_of(f), x).unwrap();
        assert_eq!(
            got[0].to_bits(),
            want.to_bits(),
            "served answer drifted from the registry for {x:?}"
        );
    }
    assert!(server.stats().identity_holds(), "{:?}", server.stats());
}

/// Open file descriptors of this process (Linux); 0 where unsupported.
pub fn fd_count() -> usize {
    std::fs::read_dir("/proc/self/fd")
        .map(|d| d.count())
        .unwrap_or(0)
}

/// Resident set size in KiB (Linux); 0 where unsupported.
pub fn rss_kb() -> usize {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|l| l.starts_with("VmRSS:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// A small standard fleet for most suites.
pub fn small_fleet() -> Vec<FleetModel> {
    fleet(12, 33)
}
