//! Deterministic overload: injector holds occupy admission slots at
//! exact request indices, so these tests fill the server to overflow
//! without sleeps-and-hope — then pin shed policies, queue deadlines,
//! the critical bypass, and the accounting identity under fire.

mod common;

use common::{assert_still_serving, id_of, key_of, small_fleet, start, workload};
use cpr_bench::fixtures::FleetModel;
use cpr_registry::ShedPolicy;
use cpr_server::chaos::{ChaosClient, ClientResponse};
use cpr_server::{AdmissionConfig, CprServer, ServerConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn overload_cfg(max_concurrent: usize, max_queue: usize, policy: ShedPolicy) -> ServerConfig {
    ServerConfig {
        admission: AdmissionConfig {
            max_concurrent,
            max_queue,
            shed_policy: policy,
            queue_timeout: Duration::from_secs(10),
        },
        ..ServerConfig::default()
    }
}

/// Spin until `cond` holds (bounded; these tests never sleep-and-hope).
fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Fire a predict from its own thread (it may park on an injector hold).
fn predict_bg(
    server: &CprServer,
    f: &FleetModel,
    x: Vec<f64>,
    deadline_ms: Option<u64>,
) -> JoinHandle<ClientResponse> {
    let addr = server.local_addr();
    let key = (f.app.clone(), f.machine.clone(), f.metric.clone());
    std::thread::spawn(move || {
        ChaosClient::new(addr)
            .predict((&key.0, &key.1, &key.2), &[x], deadline_ms)
            .expect("predict request must get a response")
    })
}

#[test]
fn reject_newest_sheds_only_past_a_full_queue() {
    const SLOTS: usize = 2;
    const QUEUE: usize = 2;
    let models = small_fleet();
    let server = start(
        &models,
        overload_cfg(SLOTS, QUEUE, ShedPolicy::RejectNewest),
    );
    let inj = server.fault_injector();
    for i in 0..SLOTS as u64 {
        inj.hold_at(i, Duration::from_secs(10));
    }

    // Fill every compute slot with held requests...
    let held: Vec<_> = (0..SLOTS)
        .map(|i| {
            predict_bg(
                &server,
                &models[i],
                vec![100.0 + i as f64, 1.0, 2.0],
                Some(10_000),
            )
        })
        .collect();
    wait_until("slots held", || server.stats().active == SLOTS);
    // ...then the whole wait queue...
    let queued: Vec<_> = (0..QUEUE)
        .map(|i| {
            predict_bg(
                &server,
                &models[SLOTS + i],
                vec![50.0, 2.0, 1.0],
                Some(10_000),
            )
        })
        .collect();
    wait_until("queue full", || server.stats().queued == QUEUE);

    // ...now the next arrival sheds immediately with backpressure hints.
    let client = ChaosClient::new(server.local_addr());
    let shed = client
        .predict(key_of(&models[0]), &[vec![1.0, 1.0, 1.0]], Some(10_000))
        .unwrap();
    assert_eq!(shed.status, 503);
    assert!(shed.header("retry-after").is_some());
    let s = server.stats();
    assert_eq!(s.shed_queue_full, 1);
    assert_eq!((s.active, s.queued), (SLOTS, QUEUE));
    assert!(s.identity_holds());

    // Release: every held and queued request completes, bitwise-correct.
    inj.release_all();
    let registry = server.registry();
    for (i, h) in held.into_iter().enumerate() {
        let resp = h.join().unwrap();
        assert_eq!(resp.status, 200);
        let want = registry
            .predict(&id_of(&models[i]), &[100.0 + i as f64, 1.0, 2.0])
            .unwrap();
        assert_eq!(resp.predictions()[0].to_bits(), want.to_bits());
    }
    for (i, h) in queued.into_iter().enumerate() {
        let resp = h.join().unwrap();
        assert_eq!(resp.status, 200, "queued waiter {i} must inherit a slot");
    }
    let s = server.stats();
    assert_eq!(s.accepted, (SLOTS + QUEUE) as u64);
    assert_eq!(s.shed_queue_full, 1);
    assert!(s.identity_holds());
}

#[test]
fn drop_oldest_evicts_the_longest_waiter_in_favor_of_the_newest() {
    let models = small_fleet();
    let server = start(&models, overload_cfg(1, 1, ShedPolicy::DropOldest));
    let inj = server.fault_injector();
    inj.hold_at(0, Duration::from_secs(10));

    let held = predict_bg(&server, &models[0], vec![100.0, 1.0, 2.0], Some(10_000));
    wait_until("slot held", || server.stats().active == 1);
    let evicted = predict_bg(&server, &models[1], vec![200.0, 2.0, 1.0], Some(10_000));
    wait_until("waiter queued", || server.stats().queued == 1);
    // The newest arrival evicts the oldest waiter and takes its place.
    let winner = predict_bg(&server, &models[2], vec![300.0, 3.0, 3.0], Some(10_000));
    let resp = evicted.join().unwrap();
    assert_eq!(
        resp.status, 503,
        "evicted waiter must get a clean shed, not silence"
    );
    wait_until("winner queued", || server.stats().queued == 1);

    inj.release_all();
    assert_eq!(held.join().unwrap().status, 200);
    assert_eq!(
        winner.join().unwrap().status,
        200,
        "newest must inherit the slot"
    );
    let s = server.stats();
    assert_eq!(s.accepted, 2);
    assert_eq!(s.shed_queue_full, 1);
    assert!(s.identity_holds());
}

#[test]
fn critical_probes_answer_under_full_shed() {
    const SLOTS: usize = 2;
    const QUEUE: usize = 2;
    let models = small_fleet();
    let server = start(
        &models,
        overload_cfg(SLOTS, QUEUE, ShedPolicy::RejectNewest),
    );
    let inj = server.fault_injector();
    for i in 0..SLOTS as u64 {
        inj.hold_at(i, Duration::from_secs(10));
    }
    let busy: Vec<_> = (0..SLOTS + QUEUE)
        .map(|i| predict_bg(&server, &models[i], vec![10.0, 1.0, 1.0], Some(10_000)))
        .collect();
    wait_until("fully saturated", || {
        let s = server.stats();
        s.active == SLOTS && s.queued == QUEUE
    });

    // Every predict slot and queue seat is taken; the operator's view
    // still answers, promptly.
    let client = ChaosClient::new(server.local_addr());
    let t0 = Instant::now();
    assert_eq!(client.health().unwrap(), "ok");
    let stats = client.stats().unwrap();
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "probes must not queue behind predicts"
    );
    assert_eq!(stats["active"], SLOTS as u64);
    assert_eq!(stats["queued"], QUEUE as u64);

    inj.release_all();
    for h in busy {
        assert_eq!(h.join().unwrap().status, 200);
    }
    assert!(server.stats().identity_holds());
}

#[test]
fn deadline_expiring_in_queue_is_a_deadline_shed() {
    let models = small_fleet();
    let server = start(&models, overload_cfg(1, 4, ShedPolicy::RejectNewest));
    let inj = server.fault_injector();
    inj.hold_at(0, Duration::from_secs(10));
    let held = predict_bg(&server, &models[0], vec![100.0, 1.0, 2.0], Some(10_000));
    wait_until("slot held", || server.stats().active == 1);

    // This request's own deadline expires while it waits in the queue.
    let client = ChaosClient::new(server.local_addr());
    let resp = client
        .predict(key_of(&models[1]), &[vec![5.0, 1.0, 1.0]], Some(60))
        .unwrap();
    assert_eq!(resp.status, 503);
    let s = server.stats();
    assert_eq!(
        s.shed_deadline, 1,
        "queue-expired deadline must land in shed_deadline"
    );
    assert_eq!(s.shed_queue_full, 0);

    inj.release_all();
    assert_eq!(held.join().unwrap().status, 200);
    assert!(server.stats().identity_holds());
}

#[test]
fn queue_wait_cap_is_an_overload_shed_not_a_deadline_shed() {
    let models = small_fleet();
    let mut cfg = overload_cfg(1, 4, ShedPolicy::RejectNewest);
    cfg.admission.queue_timeout = Duration::from_millis(60);
    cfg.default_deadline = Duration::from_secs(5);
    let server = start(&models, cfg);
    let inj = server.fault_injector();
    inj.hold_at(0, Duration::from_secs(10));
    let held = predict_bg(&server, &models[0], vec![100.0, 1.0, 2.0], Some(10_000));
    wait_until("slot held", || server.stats().active == 1);

    // No deadline header: the queue-wait cap fires first, and that is
    // overload (shed_queue_full), not the request's deadline.
    let client = ChaosClient::new(server.local_addr());
    let resp = client
        .predict(key_of(&models[1]), &[vec![5.0, 1.0, 1.0]], None)
        .unwrap();
    assert_eq!(resp.status, 503);
    let s = server.stats();
    assert_eq!(s.shed_queue_full, 1);
    assert_eq!(s.shed_deadline, 0);

    inj.release_all();
    assert_eq!(held.join().unwrap().status, 200);
    assert!(server.stats().identity_holds());
}

/// Satellite: `accepted + shed_queue_full + shed_deadline +
/// rejected_malformed == received` at **every** stats snapshot while
/// good, malformed, deadline-zero, and overloaded traffic hammer the
/// server concurrently — and the totals reconcile exactly at the end.
#[test]
fn accounting_identity_holds_at_every_snapshot_under_fire() {
    const GOOD_THREADS: usize = 3;
    const GOOD_EACH: u64 = 60;
    const MALFORMED: u64 = 40;
    const DEADLINE_ZERO: u64 = 40;

    let models = small_fleet();
    let mut cfg = overload_cfg(2, 2, ShedPolicy::RejectNewest);
    cfg.admission.queue_timeout = Duration::from_millis(20);
    let server = Arc::new(start(&models, cfg));
    let done = Arc::new(AtomicBool::new(false));

    // Sampler: the identity must hold on every snapshot it takes, and
    // `received` must be monotone.
    let sampler = {
        let server = Arc::clone(&server);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut last_received = 0u64;
            let mut snapshots = 0u64;
            while !done.load(Ordering::Acquire) {
                let s = server.stats();
                assert!(s.identity_holds(), "identity broken mid-flight: {s:?}");
                assert!(s.received >= last_received, "received went backwards");
                last_received = s.received;
                snapshots += 1;
                std::thread::yield_now();
            }
            snapshots
        })
    };

    let sent_good = Arc::new(AtomicU64::new(0));
    let mut traffic = Vec::new();
    for t in 0..GOOD_THREADS {
        let addr = server.local_addr();
        let models = models.clone();
        let sent = Arc::clone(&sent_good);
        traffic.push(std::thread::spawn(move || {
            let client = ChaosClient::new(addr);
            for (who, x) in workload(&models, GOOD_EACH as usize, 100 + t as u64) {
                let f = &models[who];
                let resp = client.predict(key_of(f), &[x], Some(5_000)).unwrap();
                // Under deliberate overload a good request may shed; it
                // must never vanish or error any other way.
                assert!(
                    resp.status == 200 || resp.status == 503,
                    "status {}",
                    resp.status
                );
                sent.fetch_add(1, Ordering::SeqCst);
            }
        }));
    }
    {
        let addr = server.local_addr();
        let f = models[0].clone();
        traffic.push(std::thread::spawn(move || {
            let client = ChaosClient::new(addr);
            let path = format!("/predict/{}/{}/{}", f.app, f.machine, f.metric);
            for _ in 0..MALFORMED {
                let resp = client.request("POST", &path, &[], b"not a float").unwrap();
                assert_eq!(resp.status, 400);
            }
        }));
    }
    {
        let addr = server.local_addr();
        let f = models[1].clone();
        traffic.push(std::thread::spawn(move || {
            let client = ChaosClient::new(addr);
            for _ in 0..DEADLINE_ZERO {
                let resp = client
                    .predict(
                        (&f.app, &f.machine, &f.metric),
                        &[vec![9.0, 1.0, 1.0]],
                        Some(0),
                    )
                    .unwrap();
                assert_eq!(resp.status, 503);
            }
        }));
    }
    for h in traffic {
        h.join().unwrap();
    }
    done.store(true, Ordering::Release);
    let snapshots = sampler.join().unwrap();
    assert!(snapshots > 0);

    let total = GOOD_THREADS as u64 * GOOD_EACH + MALFORMED + DEADLINE_ZERO;
    let s = server.stats();
    assert_eq!(s.received, total, "{s:?}");
    assert_eq!(s.rejected_malformed, MALFORMED);
    assert_eq!(s.shed_deadline, DEADLINE_ZERO);
    assert_eq!(
        s.accepted + s.shed_queue_full,
        GOOD_THREADS as u64 * GOOD_EACH
    );
    assert!(s.identity_holds());
    assert_eq!(s.in_flight, 0);

    // The beating did not degrade serving.
    assert_still_serving(&server, &models, &workload(&models, 20, 5));
}
