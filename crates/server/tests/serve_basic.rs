//! Happy-path end-to-end: bitwise-equal serving over the wire,
//! keep-alive, probe endpoints, trust-boundary rejections with the
//! right statuses, deadline header behavior, and lossless drain with
//! restart recovery.

mod common;

use common::{assert_still_serving, id_of, key_of, registry_of, small_fleet, start, workload};
use cpr_registry::ModelRegistry;
use cpr_server::chaos::{ChaosClient, ClientConn};
use cpr_server::{CprServer, ServerConfig, DEADLINE_HEADER, RETRY_AFTER_MS_HEADER};
use cpr_store::{FleetStore, MemFs};
use std::sync::Arc;

#[test]
fn serves_bitwise_equal_to_the_registry() {
    let models = small_fleet();
    let server = start(&models, ServerConfig::default());
    assert_still_serving(&server, &models, &workload(&models, 120, 7));
    let s = server.stats();
    assert_eq!(s.accepted, 120);
    assert_eq!(s.received, 120);
}

#[test]
fn multi_query_batches_come_back_in_order() {
    let models = small_fleet();
    let server = start(&models, ServerConfig::default());
    let client = ChaosClient::new(server.local_addr());
    let registry = server.registry();
    let f = &models[3];
    let queries: Vec<Vec<f64>> = workload(&models, 40, 11)
        .into_iter()
        .map(|(_, x)| x)
        .collect();
    let resp = client.predict(key_of(f), &queries, None).unwrap();
    assert_eq!(resp.status, 200);
    let got = resp.predictions();
    assert_eq!(got.len(), queries.len());
    for (x, y) in queries.iter().zip(&got) {
        assert_eq!(
            y.to_bits(),
            registry.predict(&id_of(f), x).unwrap().to_bits()
        );
    }
}

#[test]
fn keep_alive_reuses_one_connection() {
    let models = small_fleet();
    let server = start(&models, ServerConfig::default());
    let mut conn = ClientConn::open(server.local_addr()).unwrap();
    let registry = server.registry();
    for (who, x) in workload(&models, 50, 13) {
        let f = &models[who];
        let path = format!("/predict/{}/{}/{}", f.app, f.machine, f.metric);
        let body = x
            .iter()
            .map(|v| format!("{v}"))
            .collect::<Vec<_>>()
            .join(" ");
        let resp = conn.request("POST", &path, &[], body.as_bytes()).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.predictions()[0].to_bits(),
            registry.predict(&id_of(f), &x).unwrap().to_bits()
        );
    }
    assert_eq!(server.stats().accepted, 50);
}

#[test]
fn health_and_stats_probes() {
    let models = small_fleet();
    let server = start(&models, ServerConfig::default());
    let client = ChaosClient::new(server.local_addr());
    assert_eq!(client.health().unwrap(), "ok");
    assert_still_serving(&server, &models, &workload(&models, 10, 3));
    let stats = client.stats().unwrap();
    // 10 predicts + the health probe + the stats call itself sees >= 11
    // received; identity over the wire too.
    assert!(stats["received"] >= 11, "{stats:?}");
    assert_eq!(
        stats["received"],
        stats["accepted"]
            + stats["shed_queue_full"]
            + stats["shed_deadline"]
            + stats["rejected_malformed"]
    );
}

#[test]
fn trust_boundary_statuses() {
    let models = small_fleet();
    let server = start(&models, ServerConfig::default());
    let client = ChaosClient::new(server.local_addr());
    let f = &models[0];

    // Unknown model → 404.
    let resp = client
        .predict(("ghost", "nowhere", "time"), &[vec![1.0, 2.0, 3.0]], None)
        .unwrap();
    assert_eq!(resp.status, 404);
    // Unknown endpoint → 404; wrong method on predict → 405.
    assert_eq!(
        client.request("GET", "/nope", &[], b"").unwrap().status,
        404
    );
    let path = format!("/predict/{}/{}/{}", f.app, f.machine, f.metric);
    assert_eq!(client.request("GET", &path, &[], b"").unwrap().status, 405);
    // Bad float body, NaN coordinate, wrong dimension → 400.
    assert_eq!(
        client
            .request("POST", &path, &[], b"1 two 3")
            .unwrap()
            .status,
        400
    );
    assert_eq!(
        client
            .predict(key_of(f), &[vec![f64::NAN, 2.0, 3.0]], None)
            .unwrap()
            .status,
        400
    );
    assert_eq!(
        client
            .predict(key_of(f), &[vec![1.0, 2.0]], None)
            .unwrap()
            .status,
        400
    );
    // Empty body → 400.
    assert_eq!(client.request("POST", &path, &[], b"").unwrap().status, 400);
    // Bad deadline header → 400.
    let resp = client
        .request("POST", &path, &[(DEADLINE_HEADER, "soon".into())], b"1 2 3")
        .unwrap();
    assert_eq!(resp.status, 400);

    let s = server.stats();
    assert_eq!(s.rejected_malformed, 8);
    assert_eq!(s.accepted, 0);
    assert!(s.identity_holds());
    // The trust boundary did not poison serving.
    assert_still_serving(&server, &models, &workload(&models, 5, 17));
}

#[test]
fn deadline_zero_sheds_with_backpressure_hints() {
    let models = small_fleet();
    let server = start(&models, ServerConfig::default());
    let client = ChaosClient::new(server.local_addr());
    let f = &models[1];
    let resp = client
        .predict(key_of(f), &[vec![100.0, 1.0, 2.0]], Some(0))
        .unwrap();
    assert_eq!(resp.status, 503);
    let retry_s: u64 = resp
        .header("retry-after")
        .expect("retry-after")
        .parse()
        .unwrap();
    let retry_ms: u64 = resp
        .header(RETRY_AFTER_MS_HEADER)
        .expect("ms header")
        .parse()
        .unwrap();
    assert!(retry_s >= 1);
    assert!((10..=5_000).contains(&retry_ms));
    let s = server.stats();
    assert_eq!(s.shed_deadline, 1);
    assert!(s.identity_holds());
}

#[test]
fn generous_deadline_header_is_honored() {
    let models = small_fleet();
    let server = start(&models, ServerConfig::default());
    let client = ChaosClient::new(server.local_addr());
    let f = &models[2];
    let x = vec![500.0, 3.0, 1.0];
    let resp = client
        .predict(key_of(f), std::slice::from_ref(&x), Some(10_000))
        .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.predictions()[0].to_bits(),
        server.registry().predict(&id_of(f), &x).unwrap().to_bits()
    );
}

#[test]
fn drain_flushes_a_recoverable_snapshot() {
    let models = small_fleet();
    let fs = Arc::new(MemFs::new());
    let store = Arc::new(FleetStore::open(fs.clone()).unwrap());
    let registry = registry_of(&models);
    let server = CprServer::bind_with_store(
        "127.0.0.1:0",
        Arc::clone(&registry),
        Some(Arc::clone(&store)),
        ServerConfig::default(),
    )
    .unwrap();
    let queries = workload(&models, 30, 23);
    assert_still_serving(&server, &models, &queries);
    let addr = server.local_addr();

    let report = server.drain();
    assert_eq!(report.snapshot_error, None);
    let generation = report.snapshot_generation.expect("drain must flush");
    assert!(report.final_stats.identity_holds());

    // The drained server is really gone: no new connections served.
    let client = ChaosClient::new(addr);
    assert!(client.health().is_err(), "drained server must not answer");

    // Restart: a fresh registry recovered from the drained store serves
    // bitwise-identically to the fleet the server was fronting.
    let restored = ModelRegistry::new();
    let recovered = FleetStore::open(fs).unwrap();
    let report = restored.restore(&recovered).unwrap();
    assert_eq!(report.generation, generation);
    assert_eq!(report.restored.len(), models.len());
    assert!(report.skipped.is_empty());
    for (who, x) in &queries {
        let id = id_of(&models[*who]);
        assert_eq!(
            restored.predict(&id, x).unwrap().to_bits(),
            registry.predict(&id, x).unwrap().to_bits(),
            "restart lost the drained fleet"
        );
    }
}

#[test]
fn dropping_the_server_shuts_it_down() {
    let models = small_fleet();
    let server = start(&models, ServerConfig::default());
    let addr = server.local_addr();
    drop(server);
    assert!(ChaosClient::new(addr).health().is_err());
}
