//! The chaos fault matrix: every fault in the catalog fires against a
//! live server, and after each one the suite re-runs the
//! never-stop-serving check — well-formed requests answered 200 with
//! predictions bitwise-equal to the registry, accounting identity
//! intact. Faults are deterministic: scripted client misbehavior
//! ([`ChaosClient`]) outside, exact-index holds/panics
//! ([`ServerFaultInjector`]) inside.

mod common;

use common::{assert_still_serving, fd_count, key_of, small_fleet, start, workload};
use cpr_bench::fixtures::FleetModel;
use cpr_registry::ShedPolicy;
use cpr_server::chaos::{ChaosClient, ClientResponse};
use cpr_server::{AdmissionConfig, CprServer, ServerConfig};
use cpr_store::{FleetStore, MemFs};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn predict_bg(
    server: &CprServer,
    f: &FleetModel,
    x: Vec<f64>,
    deadline_ms: Option<u64>,
) -> JoinHandle<ClientResponse> {
    let addr = server.local_addr();
    let key = (f.app.clone(), f.machine.clone(), f.metric.clone());
    std::thread::spawn(move || {
        ChaosClient::new(addr)
            .predict((&key.0, &key.1, &key.2), &[x], deadline_ms)
            .expect("predict request must get a response")
    })
}

#[test]
fn mid_request_disconnects_are_contained() {
    let models = small_fleet();
    let server = start(&models, ServerConfig::default());
    let client = ChaosClient::new(server.local_addr());
    let f = &models[0];

    // Vanish mid-head (no terminator yet) and mid-body (announced 50
    // bytes, sent 3).
    client.disconnect_after(b"POST /predict/a/b/c HTT").unwrap();
    let head = format!(
        "POST /predict/{}/{}/{} HTTP/1.1\r\ncontent-length: 50\r\n\r\n1 2",
        f.app, f.machine, f.metric
    );
    client.disconnect_after(head.as_bytes()).unwrap();
    wait_until("both disconnects noticed", || {
        server.stats().disconnects == 2
    });

    let s = server.stats();
    assert_eq!(s.received, 0, "a vanished request is not a request");
    assert!(s.identity_holds());
    assert_still_serving(&server, &models, &workload(&models, 10, 41));
}

#[test]
fn slow_loris_times_out_with_a_408_not_a_stuck_worker() {
    let models = small_fleet();
    let cfg = ServerConfig {
        read_budget: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let server = start(&models, cfg);
    let client = ChaosClient::new(server.local_addr());
    let f = &models[0];

    let full = format!(
        "POST /predict/{}/{}/{} HTTP/1.1\r\ncontent-length: 5\r\n\r\n1 2 3",
        f.app, f.machine, f.metric
    );
    // Dribble 2 bytes per 50ms: the 200ms whole-request budget expires
    // long before the request completes.
    let answer = client
        .slow_loris(
            full.as_bytes(),
            2,
            Duration::from_millis(50),
            Duration::from_secs(3),
        )
        .unwrap();
    let text = String::from_utf8_lossy(&answer);
    assert!(text.starts_with("HTTP/1.1 408"), "wanted 408, got {text:?}");
    let s = server.stats();
    assert_eq!(s.read_timeouts, 1);
    assert_eq!(
        s.received, 0,
        "a request that never arrived is not received"
    );
    assert!(s.identity_holds());
    assert_still_serving(&server, &models, &workload(&models, 10, 43));
}

#[test]
fn malformed_and_oversized_frames_reject_cleanly() {
    let models = small_fleet();
    let server = start(&models, ServerConfig::default());
    let client = ChaosClient::new(server.local_addr());

    let mut too_many_headers = b"GET /health HTTP/1.1\r\n".to_vec();
    for i in 0..70 {
        too_many_headers.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
    }
    too_many_headers.extend_from_slice(b"\r\n");
    let huge_head = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(9 << 10));

    let frames: &[(&[u8], u16)] = &[
        (b"GARBAGE\r\n\r\n", 400),
        (b"\xff\xfe\xfd\r\n\r\n", 400),
        (b"GET  /health HTTP/1.1\r\n\r\n", 400),
        (b"POST /p HTTP/1.1\r\ncontent-length: banana\r\n\r\n", 400),
        (b"POST /p HTTP/1.1\r\ncontent-length: 2000000\r\n\r\n", 413),
        (&too_many_headers, 431),
        (huge_head.as_bytes(), 431),
    ];
    for (frame, want) in frames {
        let got = client.raw_status(frame).unwrap();
        assert_eq!(
            got,
            Some(*want),
            "frame {:?}",
            String::from_utf8_lossy(frame)
        );
    }

    let s = server.stats();
    assert_eq!(s.rejected_malformed, frames.len() as u64);
    assert_eq!(s.received, frames.len() as u64);
    assert!(s.identity_holds());
    assert_still_serving(&server, &models, &workload(&models, 10, 47));
}

#[test]
fn connection_storm_bounces_at_the_door_with_bounded_resources() {
    const WORKERS: usize = 3; // floor: max_concurrent + max_queue + 2
    const BACKLOG: usize = 2;
    let models = small_fleet();
    let cfg = ServerConfig {
        workers: 1,
        conn_backlog: BACKLOG,
        admission: AdmissionConfig {
            max_concurrent: 1,
            max_queue: 0,
            shed_policy: ShedPolicy::RejectNewest,
            queue_timeout: Duration::from_millis(100),
        },
        read_budget: Duration::from_secs(3),
        ..ServerConfig::default()
    };
    let server = start(&models, cfg);
    let client = ChaosClient::new(server.local_addr());
    let fd_before = fd_count();

    // Occupy every worker with an idle connection, then fill the
    // pending backlog with more. Paced: a back-to-back burst can transit
    // the bounded pending queue faster than workers pop it and bounce
    // the setup connections themselves.
    let occupiers: Vec<TcpStream> = (0..WORKERS)
        .map(|_| {
            let s = TcpStream::connect(server.local_addr()).unwrap();
            std::thread::sleep(Duration::from_millis(30));
            s
        })
        .collect();
    let backlog_fill: Vec<TcpStream> = (0..BACKLOG)
        .map(|_| {
            let s = TcpStream::connect(server.local_addr()).unwrap();
            std::thread::sleep(Duration::from_millis(30));
            s
        })
        .collect();
    assert_eq!(server.stats().door_bounced, 0, "setup must not bounce yet");

    // The storm: every further connection is bounced at the door with a
    // canned 503 — bounded work, no worker, no fd pile-up.
    for i in 0..10 {
        let status = client.raw_status(b"").unwrap();
        assert_eq!(status, Some(503), "storm conn {i} must get the canned 503");
    }
    let s = server.stats();
    assert_eq!(s.door_bounced, 10);
    assert_eq!(s.received, 0, "bounced connections never carried a request");
    assert!(s.identity_holds());

    // Let go: workers see clean closes and the server is fully back.
    drop(occupiers);
    drop(backlog_fill);
    wait_until("fds released", || fd_count() <= fd_before + 4);
    assert_still_serving(&server, &models, &workload(&models, 10, 53));
}

#[test]
fn deadline_zero_flood_sheds_everything_cleanly() {
    let models = small_fleet();
    let server = start(&models, ServerConfig::default());
    let client = ChaosClient::new(server.local_addr());
    for i in 0..100u64 {
        let f = &models[(i % models.len() as u64) as usize];
        let resp = client
            .predict(key_of(f), &[vec![7.0, 1.0, 1.0]], Some(0))
            .unwrap();
        assert_eq!(resp.status, 503);
        assert!(resp.header("retry-after").is_some());
    }
    let s = server.stats();
    assert_eq!(s.shed_deadline, 100);
    assert_eq!(s.accepted, 0);
    assert!(s.identity_holds());
    assert_still_serving(&server, &models, &workload(&models, 10, 59));
}

#[test]
fn injected_panic_is_contained_to_a_500() {
    let models = small_fleet();
    let server = start(&models, ServerConfig::default());
    let inj = server.fault_injector();
    inj.panic_at(0);

    let client = ChaosClient::new(server.local_addr());
    let resp = client
        .predict(key_of(&models[0]), &[vec![4.0, 1.0, 1.0]], None)
        .unwrap();
    assert_eq!(resp.status, 500, "panic must surface as a contained 500");
    assert_eq!(inj.fired_panics(), 1);

    let s = server.stats();
    assert_eq!(s.contained_panics, 1);
    assert_eq!(s.accepted, 1, "a panicked request still reached compute");
    assert_eq!(s.active, 0, "the admission slot must be released on unwind");
    assert!(s.identity_holds());
    // The panic poisoned nothing: the same model keeps serving.
    assert_still_serving(&server, &models, &workload(&models, 10, 61));
}

#[test]
fn drain_under_chaos_is_lossless() {
    let models = small_fleet();
    let fs = Arc::new(MemFs::new());
    let store = Arc::new(FleetStore::open(fs.clone()).unwrap());
    let server = CprServer::bind_with_store(
        "127.0.0.1:0",
        common::registry_of(&models),
        Some(Arc::clone(&store)),
        ServerConfig::default(),
    )
    .unwrap();
    let registry = server.registry();

    // A request is parked on an armed hold when drain begins.
    let inj = server.fault_injector();
    inj.hold_at(0, Duration::from_secs(30));
    let x = vec![123.0, 2.0, 1.0];
    let held = predict_bg(&server, &models[0], x.clone(), Some(10_000));
    wait_until("request held", || server.stats().active == 1);

    // Drain releases the hold, finishes the in-flight request, and
    // flushes the final snapshot — nobody is abandoned mid-answer.
    let report = server.drain();
    let resp = held.join().unwrap();
    assert_eq!(resp.status, 200, "in-flight work must finish during drain");
    assert_eq!(
        resp.predictions()[0].to_bits(),
        registry
            .predict(&common::id_of(&models[0]), &x)
            .unwrap()
            .to_bits()
    );
    assert_eq!(report.snapshot_error, None);
    let generation = report.snapshot_generation.expect("drain must flush");
    assert!(report.final_stats.identity_holds());
    assert_eq!(report.final_stats.in_flight, 0);

    // A cold restart from the drained store serves the same fleet.
    let restored = cpr_registry::ModelRegistry::new();
    let recovered = FleetStore::open(fs).unwrap();
    let rr = restored.restore(&recovered).unwrap();
    assert_eq!(rr.generation, generation);
    assert_eq!(rr.restored.len(), models.len());
    for (who, q) in workload(&models, 20, 67) {
        let id = common::id_of(&models[who]);
        assert_eq!(
            restored.predict(&id, &q).unwrap().to_bits(),
            registry.predict(&id, &q).unwrap().to_bits()
        );
    }
}

#[test]
fn the_full_catalog_in_sequence_never_stops_serving() {
    let models = small_fleet();
    let cfg = ServerConfig {
        read_budget: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    let server = start(&models, cfg);
    let client = ChaosClient::new(server.local_addr());
    let inj = server.fault_injector();
    let fd_before = fd_count();

    for round in 0..3u64 {
        client.disconnect_after(b"POST /pr").unwrap();
        client.raw_status(b"JUNK\r\n\r\n").unwrap();
        let _ = client.slow_loris(
            b"GET /health HTTP/1.1\r\n",
            1,
            Duration::from_millis(80),
            Duration::from_secs(2),
        );
        let f = &models[(round % models.len() as u64) as usize];
        assert_eq!(
            client
                .predict(key_of(f), &[vec![1.0, 1.0, 1.0]], Some(0))
                .unwrap()
                .status,
            503
        );
        inj.panic_at(server.stats().received + 100); // arm a panic that may or may not land
        assert_still_serving(&server, &models, &workload(&models, 8, 70 + round));
    }

    let s = server.stats();
    assert!(s.identity_holds(), "{s:?}");
    assert_eq!(s.rejected_malformed, 3);
    assert_eq!(s.shed_deadline, 3);
    assert!(s.disconnects >= 3);
    assert!(s.read_timeouts >= 3);
    // Sockets from three rounds of abuse do not accumulate.
    wait_until("fds bounded", || fd_count() <= fd_before + 8);
}
