//! The telemetry write-ahead log.
//!
//! Sample batches submitted to the refit pipeline are appended here
//! *before* they are queued, so a crash between "telemetry accepted"
//! and "refit model persisted" loses nothing: on restart the valid
//! prefix of the log is replayed into the pipeline. Once a gated swap
//! lands in the snapshot store, the batches it absorbed are redundant
//! and [`TelemetryWal::compact`] rewrites the log without them.
//!
//! One file, one rule: appends go to the tail, and replay consumes the
//! longest valid prefix ([`scan_stream`]) — the first invalid frame is
//! where durable history ends (a torn tail from a mid-append crash is
//! normal, not an error). Compaction rewrites through a temp file and
//! renames over the log, so a crash mid-compaction leaves either the
//! old log or the new one, both complete.
//!
//! The log is **bounded** ([`WalLimits`]): compaction is driven by
//! durable snapshots, so a model whose refits keep failing the quality
//! gate never persists — and before the cap existed its WAL entries
//! accumulated forever. When an append pushes the log past the byte or
//! record cap, the oldest records rotate out (a rewrite through the same
//! atomic temp-file protocol) until the log fits again. Freshest
//! telemetry wins, which matches the shed policies upstream; the
//! rotated-away batches are the ones a replay would have resubmitted
//! redundantly anyway.

use crate::codec::{put_f64, put_str, put_u16, put_u32, put_u64, Reader};
use crate::fs::StoreFs;
use crate::record::{frame, scan_stream, FRAME_OVERHEAD};
use crate::{FsError, StoreError};
use cpr_obs::{Counter, EventKind, MetricsRegistry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

const WAL_FILE: &str = "wal";
const WAL_TMP_PREFIX: &str = "walswap-";

/// Growth bounds for the telemetry log. An append that pushes the log
/// past either cap rotates the **oldest** records away until it fits
/// (the newest record always survives, even if it alone exceeds
/// `max_bytes` — a cap must never make a fresh append disappear).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalLimits {
    /// Max on-medium log size in bytes before rotation.
    pub max_bytes: usize,
    /// Max valid records before rotation.
    pub max_records: usize,
}

impl Default for WalLimits {
    /// Generous production default — big enough that rotation only fires
    /// when compaction has been starved for a long time (the
    /// gate-keeps-rejecting pathology), small enough that the log cannot
    /// eat a disk.
    fn default() -> Self {
        Self {
            max_bytes: 64 << 20,
            max_records: 1 << 16,
        }
    }
}

impl WalLimits {
    /// No caps — the pre-rotation behavior, for tests that need it.
    pub fn unbounded() -> Self {
        Self {
            max_bytes: usize::MAX,
            max_records: usize::MAX,
        }
    }
}

/// In-memory view of the on-medium log size, lazily initialized from a
/// scan and advanced by appends/rewrites. Guarded by one mutex that also
/// serializes mutating operations against each other (the fs append was
/// already the serialization point for durability; the mutex makes the
/// cap check atomic with it).
struct WalUsage {
    /// `None` until the first mutating op scans the existing file.
    loaded: Option<(usize, usize)>, // (bytes, records)
}

/// One replayed WAL entry: a sample batch submitted for `key`, tagged
/// with the submitter's sequence number so post-crash compaction can
/// still resolve it.
#[derive(Debug, Clone, PartialEq)]
pub struct WalEntry {
    /// Store key of the model the batch belongs to.
    pub key: String,
    /// Submitter-assigned sequence number (unique per key).
    pub seq: u64,
    /// The batch: rows of `dim` coordinates followed by one value.
    pub samples: Vec<Vec<f64>>,
}

/// Result of [`TelemetryWal::replay`].
#[derive(Debug, Clone, PartialEq)]
pub struct WalReplay {
    /// Valid-prefix entries in append order.
    pub entries: Vec<WalEntry>,
    /// Whether a torn/corrupt tail was discarded.
    pub torn: bool,
}

/// Append-only checksummed telemetry log over a [`StoreFs`]. All
/// methods are callable from any thread; the filesystem's append is the
/// serialization point.
pub struct TelemetryWal {
    fs: Arc<dyn StoreFs>,
    tmp_counter: AtomicU64,
    limits: WalLimits,
    usage: Mutex<WalUsage>,
    /// Durable appends over this handle's lifetime.
    appends: AtomicU64,
    /// Rotations performed (each may drop several records).
    rotations: AtomicU64,
    /// Records dropped by rotation over this handle's lifetime.
    rotated_records: AtomicU64,
    /// Exported mirrors of the counters above, attached late (the store
    /// opens before any observability hub exists). The internal atomics
    /// stay the source of truth; the mirror is seeded at attach and
    /// bumped in lockstep after.
    obs: OnceLock<WalObs>,
}

struct WalObs {
    registry: Arc<MetricsRegistry>,
    appends: Counter,
    rotations: Counter,
    rotated_records: Counter,
}

impl TelemetryWal {
    /// Open with the default [`WalLimits`] (lazily — the file is created
    /// on first append).
    pub fn open(fs: Arc<dyn StoreFs>) -> Self {
        Self::open_with_limits(fs, WalLimits::default())
    }

    /// Open with explicit growth bounds.
    pub fn open_with_limits(fs: Arc<dyn StoreFs>, limits: WalLimits) -> Self {
        Self {
            fs,
            tmp_counter: AtomicU64::new(0),
            limits,
            usage: Mutex::new(WalUsage { loaded: None }),
            appends: AtomicU64::new(0),
            rotations: AtomicU64::new(0),
            rotated_records: AtomicU64::new(0),
            obs: OnceLock::new(),
        }
    }

    /// Mirror this log's counters into `obs` (`cpr_wal_appends_total`,
    /// `cpr_wal_rotations_total`, `cpr_wal_rotated_records_total`) and
    /// trace rotations as `wal_rotate` events. Seeds the exported totals
    /// with everything counted before the attach; idempotent (first hub
    /// wins).
    pub fn attach_obs(&self, obs: &Arc<MetricsRegistry>) {
        let mirror = WalObs {
            registry: obs.clone(),
            appends: obs.counter("cpr_wal_appends_total"),
            rotations: obs.counter("cpr_wal_rotations_total"),
            rotated_records: obs.counter("cpr_wal_rotated_records_total"),
        };
        if self.obs.set(mirror).is_ok() {
            let o = self.obs.get().expect("just set");
            o.appends.add(self.appends.load(Ordering::Relaxed));
            o.rotations.add(self.rotations.load(Ordering::Relaxed));
            o.rotated_records
                .add(self.rotated_records.load(Ordering::Relaxed));
        }
    }

    /// The growth bounds this log enforces.
    pub fn limits(&self) -> WalLimits {
        self.limits
    }

    /// Rotations performed so far (each drops ≥ 1 oldest record).
    pub fn rotations(&self) -> u64 {
        self.rotations.load(Ordering::Relaxed)
    }

    /// Records dropped by rotation so far.
    pub fn rotated_records(&self) -> u64 {
        self.rotated_records.load(Ordering::Relaxed)
    }

    /// Current `(bytes, records)` of the on-medium log as tracked by this
    /// handle (scanned lazily on first use).
    pub fn usage(&self) -> Result<(usize, usize), StoreError> {
        let mut usage = self.usage.lock().expect("wal usage poisoned");
        self.loaded_usage(&mut usage)
    }

    fn loaded_usage(
        &self,
        usage: &mut std::sync::MutexGuard<'_, WalUsage>,
    ) -> Result<(usize, usize), StoreError> {
        if let Some(loaded) = usage.loaded {
            return Ok(loaded);
        }
        let loaded = match self.fs.read(WAL_FILE) {
            Ok(buf) => {
                let scan = scan_stream(&buf);
                (buf.len(), scan.records.len())
            }
            Err(FsError::NotFound(_)) => (0, 0),
            Err(e) => return Err(e.into()),
        };
        usage.loaded = Some(loaded);
        Ok(loaded)
    }

    /// Append one batch for `key`. Durable once this returns. If the
    /// append pushes the log past [`WalLimits`], the oldest records
    /// rotate out (the new record always survives).
    pub fn append(&self, key: &str, seq: u64, samples: &[Vec<f64>]) -> Result<(), StoreError> {
        let framed = frame(&encode_entry(key, seq, samples));
        let mut usage = self.usage.lock().expect("wal usage poisoned");
        let (bytes, records) = self.loaded_usage(&mut usage)?;
        self.fs.append(WAL_FILE, &framed)?;
        self.appends.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = self.obs.get() {
            o.appends.inc();
        }
        usage.loaded = Some((bytes + framed.len(), records + 1));
        if bytes + framed.len() > self.limits.max_bytes || records + 1 > self.limits.max_records {
            self.rotate(&mut usage)?;
        }
        Ok(())
    }

    /// Drop oldest records until the log fits its limits again. Holds the
    /// usage lock; rewrites through the atomic temp-file protocol, so a
    /// crash mid-rotation leaves the old log or the new one, complete.
    fn rotate(&self, usage: &mut std::sync::MutexGuard<'_, WalUsage>) -> Result<(), StoreError> {
        let buf = match self.fs.read(WAL_FILE) {
            Ok(b) => b,
            Err(FsError::NotFound(_)) => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        let scan = scan_stream(&buf);
        let framed_len = |payload: &[u8]| payload.len() + FRAME_OVERHEAD;
        let mut total_bytes: usize = scan.records.iter().map(|r| framed_len(r)).sum();
        let mut drop_first = 0usize;
        // Keep the newest record unconditionally: a cap must never make
        // the append that triggered rotation disappear.
        while drop_first + 1 < scan.records.len()
            && (total_bytes > self.limits.max_bytes
                || scan.records.len() - drop_first > self.limits.max_records)
        {
            total_bytes -= framed_len(&scan.records[drop_first]);
            drop_first += 1;
        }
        if drop_first == 0 && !scan.torn {
            return Ok(());
        }
        let mut kept = Vec::with_capacity(total_bytes);
        for record in &scan.records[drop_first..] {
            kept.extend_from_slice(&frame(record));
        }
        self.rewrite(&kept)?;
        usage.loaded = Some((kept.len(), scan.records.len() - drop_first));
        if drop_first > 0 {
            self.rotations.fetch_add(1, Ordering::Relaxed);
            self.rotated_records
                .fetch_add(drop_first as u64, Ordering::Relaxed);
            if let Some(o) = self.obs.get() {
                o.rotations.inc();
                o.rotated_records.add(drop_first as u64);
                o.registry
                    .events()
                    .record(EventKind::WalRotate, format!("dropped {drop_first}"));
            }
        }
        Ok(())
    }

    /// Read back the valid prefix of the log. A missing file is an empty
    /// log; a torn tail sets `torn` and is otherwise silent — it is
    /// where durable history ends.
    pub fn replay(&self) -> Result<WalReplay, StoreError> {
        let buf = match self.fs.read(WAL_FILE) {
            Ok(b) => b,
            Err(FsError::NotFound(_)) => {
                return Ok(WalReplay {
                    entries: Vec::new(),
                    torn: false,
                })
            }
            Err(e) => return Err(e.into()),
        };
        let scan = scan_stream(&buf);
        let mut entries = Vec::with_capacity(scan.records.len());
        for record in &scan.records {
            // A frame that checksums but does not decode is a framing
            // bug, not a torn tail — surface it.
            entries.push(decode_entry(record)?);
        }
        Ok(WalReplay {
            entries,
            torn: scan.torn,
        })
    }

    /// Cut a torn tail off the on-medium log so future appends extend
    /// valid history instead of burying garbage mid-stream. No-op when
    /// the log is clean or absent.
    pub fn truncate_to_valid(&self) -> Result<(), StoreError> {
        let mut usage = self.usage.lock().expect("wal usage poisoned");
        let buf = match self.fs.read(WAL_FILE) {
            Ok(b) => b,
            Err(FsError::NotFound(_)) => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        let scan = scan_stream(&buf);
        if !scan.torn {
            return Ok(());
        }
        self.rewrite(&buf[..scan.valid_len])?;
        usage.loaded = Some((scan.valid_len, scan.records.len()));
        Ok(())
    }

    /// Drop entries for `key` whose sequence numbers appear in `seqs`
    /// (they are absorbed into a durable snapshot and thus redundant).
    /// Returns how many were removed. Rewrites only the valid prefix —
    /// compaction doubles as tail truncation.
    pub fn compact(&self, key: &str, seqs: &[u64]) -> Result<usize, StoreError> {
        let mut usage = self.usage.lock().expect("wal usage poisoned");
        let buf = match self.fs.read(WAL_FILE) {
            Ok(b) => b,
            Err(FsError::NotFound(_)) => return Ok(0),
            Err(e) => return Err(e.into()),
        };
        let scan = scan_stream(&buf);
        let mut kept = Vec::new();
        let mut kept_records = 0usize;
        let mut removed = 0usize;
        for record in &scan.records {
            let entry = decode_entry(record)?;
            if entry.key == key && seqs.contains(&entry.seq) {
                removed += 1;
            } else {
                kept.extend_from_slice(&frame(record));
                kept_records += 1;
            }
        }
        if removed == 0 && !scan.torn {
            return Ok(0);
        }
        self.rewrite(&kept)?;
        usage.loaded = Some((kept.len(), kept_records));
        Ok(removed)
    }

    /// Replace the log atomically: temp write → read-back verify →
    /// rename. A torn rename leaves the old log intact (the destination
    /// pre-exists and survives), so single-fault compaction either
    /// happens completely or not at all — and redundant entries replayed
    /// later are idempotent upstream.
    fn rewrite(&self, bytes: &[u8]) -> Result<(), StoreError> {
        let tmp = format!(
            "{WAL_TMP_PREFIX}{}",
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        );
        self.fs.write(&tmp, bytes)?;
        let back = self.fs.read(&tmp)?;
        if back != bytes {
            return Err(StoreError::Corrupt(
                "read-back mismatch rewriting wal".into(),
            ));
        }
        self.fs.rename(&tmp, WAL_FILE)?;
        Ok(())
    }
}

fn encode_entry(key: &str, seq: u64, samples: &[Vec<f64>]) -> Vec<u8> {
    let dim = samples.first().map(|row| row.len().max(1) - 1).unwrap_or(0);
    let mut out = Vec::new();
    put_str(&mut out, key);
    put_u64(&mut out, seq);
    put_u16(&mut out, dim as u16);
    put_u32(&mut out, samples.len() as u32);
    for row in samples {
        assert_eq!(row.len(), dim + 1, "ragged WAL batch");
        for &v in row {
            put_f64(&mut out, v);
        }
    }
    out
}

fn decode_entry(payload: &[u8]) -> Result<WalEntry, StoreError> {
    let mut r = Reader::new(payload);
    let key = r.take_str("wal key")?;
    let seq = r.take_u64("wal seq")?;
    let dim = r.take_u16("wal dim")? as usize;
    let count = r.take_u32("wal batch count")? as usize;
    let mut samples = Vec::with_capacity(count.min(payload.len() / 8 + 1));
    for _ in 0..count {
        let mut row = Vec::with_capacity(dim + 1);
        for _ in 0..dim + 1 {
            row.push(r.take_f64("wal sample")?);
        }
        samples.push(row);
    }
    if !r.is_empty() {
        return Err(StoreError::Corrupt("trailing wal entry bytes".into()));
    }
    Ok(WalEntry { key, seq, samples })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::MemFs;

    fn batch(base: f64) -> Vec<Vec<f64>> {
        vec![vec![base, base + 1.0, base + 2.0], vec![base, base, base]]
    }

    #[test]
    fn append_replay_roundtrip() {
        let wal = TelemetryWal::open(Arc::new(MemFs::new()));
        wal.append("a", 0, &batch(1.0)).unwrap();
        wal.append("b", 0, &batch(2.0)).unwrap();
        wal.append("a", 1, &batch(3.0)).unwrap();
        let replay = wal.replay().unwrap();
        assert!(!replay.torn);
        assert_eq!(replay.entries.len(), 3);
        assert_eq!(replay.entries[0].key, "a");
        assert_eq!(replay.entries[0].seq, 0);
        assert_eq!(replay.entries[0].samples, batch(1.0));
        assert_eq!(replay.entries[2].seq, 1);
    }

    #[test]
    fn missing_log_is_empty() {
        let wal = TelemetryWal::open(Arc::new(MemFs::new()));
        let replay = wal.replay().unwrap();
        assert!(replay.entries.is_empty());
        assert!(!replay.torn);
        assert_eq!(wal.compact("a", &[0]).unwrap(), 0);
        wal.truncate_to_valid().unwrap();
    }

    #[test]
    fn torn_tail_is_discarded_then_truncated() {
        let fs = Arc::new(MemFs::new());
        let wal = TelemetryWal::open(fs.clone());
        wal.append("a", 0, &batch(1.0)).unwrap();
        wal.append("a", 1, &batch(2.0)).unwrap();
        // Tear the last few bytes off the log (crash mid-append).
        let buf = fs.read("wal").unwrap();
        fs.write("wal", &buf[..buf.len() - 5]).unwrap();
        let replay = wal.replay().unwrap();
        assert!(replay.torn);
        assert_eq!(replay.entries.len(), 1, "torn entry discarded");
        wal.truncate_to_valid().unwrap();
        let replay = wal.replay().unwrap();
        assert!(!replay.torn, "truncation removed the torn tail");
        assert_eq!(replay.entries.len(), 1);
        // Appends after truncation extend valid history.
        wal.append("a", 2, &batch(3.0)).unwrap();
        assert_eq!(wal.replay().unwrap().entries.len(), 2);
    }

    #[test]
    fn compact_removes_only_named_entries() {
        let wal = TelemetryWal::open(Arc::new(MemFs::new()));
        wal.append("a", 0, &batch(1.0)).unwrap();
        wal.append("b", 7, &batch(2.0)).unwrap();
        wal.append("a", 1, &batch(3.0)).unwrap();
        assert_eq!(wal.compact("a", &[0, 1]).unwrap(), 2);
        let replay = wal.replay().unwrap();
        assert_eq!(replay.entries.len(), 1);
        assert_eq!(replay.entries[0].key, "b");
        assert_eq!(replay.entries[0].seq, 7);
        // Seq numbers are per-key: compacting "b"'s seq 7 under key "a"
        // removes nothing.
        assert_eq!(wal.compact("a", &[7]).unwrap(), 0);
    }

    #[test]
    fn empty_batch_roundtrips() {
        let wal = TelemetryWal::open(Arc::new(MemFs::new()));
        wal.append("a", 0, &[]).unwrap();
        let replay = wal.replay().unwrap();
        assert_eq!(replay.entries[0].samples.len(), 0);
    }

    #[test]
    fn default_limits_are_finite() {
        let limits = TelemetryWal::open(Arc::new(MemFs::new())).limits();
        assert!(limits.max_bytes < usize::MAX);
        assert!(limits.max_records < usize::MAX);
    }

    #[test]
    fn record_cap_rotates_oldest_first() {
        let wal = TelemetryWal::open_with_limits(
            Arc::new(MemFs::new()),
            WalLimits {
                max_bytes: usize::MAX,
                max_records: 3,
            },
        );
        // The gate-keeps-rejecting pathology: appends arrive forever,
        // compaction never runs. The log must stay bounded.
        for seq in 0..20 {
            wal.append("stuck", seq, &batch(seq as f64)).unwrap();
            let replay = wal.replay().unwrap();
            assert!(replay.entries.len() <= 3, "log grew past the record cap");
        }
        let replay = wal.replay().unwrap();
        // Freshest telemetry survives, in order.
        let seqs: Vec<u64> = replay.entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![17, 18, 19]);
        assert_eq!(wal.rotated_records(), 17);
        assert!(wal.rotations() >= 1);
    }

    #[test]
    fn byte_cap_rotates_and_keeps_newest_even_when_oversized() {
        let wal = TelemetryWal::open_with_limits(
            Arc::new(MemFs::new()),
            WalLimits {
                max_bytes: 64,
                max_records: usize::MAX,
            },
        );
        // Every batch alone exceeds 64 bytes: each append rotates all
        // prior records away but must keep the one just written.
        for seq in 0..5 {
            wal.append("big", seq, &batch(seq as f64)).unwrap();
            let (bytes, records) = wal.usage().unwrap();
            assert_eq!(records, 1, "only the newest oversized record survives");
            assert!(bytes > 0);
        }
        let replay = wal.replay().unwrap();
        assert_eq!(replay.entries.len(), 1);
        assert_eq!(replay.entries[0].seq, 4);
    }

    #[test]
    fn rotation_survives_reopen_and_interleaves_with_compaction() {
        let fs = Arc::new(MemFs::new());
        let limits = WalLimits {
            max_bytes: usize::MAX,
            max_records: 4,
        };
        let wal = TelemetryWal::open_with_limits(fs.clone(), limits);
        for seq in 0..4 {
            wal.append("a", seq, &batch(seq as f64)).unwrap();
        }
        // A fresh handle over the same medium initializes its usage from
        // a scan, so the cap keeps holding across restarts.
        let wal2 = TelemetryWal::open_with_limits(fs, limits);
        wal2.append("a", 4, &batch(4.0)).unwrap();
        let seqs: Vec<u64> = wal2
            .replay()
            .unwrap()
            .entries
            .iter()
            .map(|e| e.seq)
            .collect();
        assert_eq!(seqs, vec![1, 2, 3, 4]);
        // Compaction under the cap: ledger stays right, appends keep
        // rotating at the bound.
        assert_eq!(wal2.compact("a", &[1, 2]).unwrap(), 2);
        wal2.append("a", 5, &batch(5.0)).unwrap();
        wal2.append("a", 6, &batch(6.0)).unwrap();
        wal2.append("a", 7, &batch(7.0)).unwrap();
        let seqs: Vec<u64> = wal2
            .replay()
            .unwrap()
            .entries
            .iter()
            .map(|e| e.seq)
            .collect();
        assert_eq!(seqs, vec![4, 5, 6, 7]);
    }
}
