//! The telemetry write-ahead log.
//!
//! Sample batches submitted to the refit pipeline are appended here
//! *before* they are queued, so a crash between "telemetry accepted"
//! and "refit model persisted" loses nothing: on restart the valid
//! prefix of the log is replayed into the pipeline. Once a gated swap
//! lands in the snapshot store, the batches it absorbed are redundant
//! and [`TelemetryWal::compact`] rewrites the log without them.
//!
//! One file, one rule: appends go to the tail, and replay consumes the
//! longest valid prefix ([`scan_stream`]) — the first invalid frame is
//! where durable history ends (a torn tail from a mid-append crash is
//! normal, not an error). Compaction rewrites through a temp file and
//! renames over the log, so a crash mid-compaction leaves either the
//! old log or the new one, both complete.

use crate::codec::{put_f64, put_str, put_u16, put_u32, put_u64, Reader};
use crate::fs::StoreFs;
use crate::record::{frame, scan_stream};
use crate::{FsError, StoreError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const WAL_FILE: &str = "wal";
const WAL_TMP_PREFIX: &str = "walswap-";

/// One replayed WAL entry: a sample batch submitted for `key`, tagged
/// with the submitter's sequence number so post-crash compaction can
/// still resolve it.
#[derive(Debug, Clone, PartialEq)]
pub struct WalEntry {
    /// Store key of the model the batch belongs to.
    pub key: String,
    /// Submitter-assigned sequence number (unique per key).
    pub seq: u64,
    /// The batch: rows of `dim` coordinates followed by one value.
    pub samples: Vec<Vec<f64>>,
}

/// Result of [`TelemetryWal::replay`].
#[derive(Debug, Clone, PartialEq)]
pub struct WalReplay {
    /// Valid-prefix entries in append order.
    pub entries: Vec<WalEntry>,
    /// Whether a torn/corrupt tail was discarded.
    pub torn: bool,
}

/// Append-only checksummed telemetry log over a [`StoreFs`]. All
/// methods are callable from any thread; the filesystem's append is the
/// serialization point.
pub struct TelemetryWal {
    fs: Arc<dyn StoreFs>,
    tmp_counter: AtomicU64,
}

impl TelemetryWal {
    /// Open (lazily — the file is created on first append).
    pub fn open(fs: Arc<dyn StoreFs>) -> Self {
        Self {
            fs,
            tmp_counter: AtomicU64::new(0),
        }
    }

    /// Append one batch for `key`. Durable once this returns.
    pub fn append(&self, key: &str, seq: u64, samples: &[Vec<f64>]) -> Result<(), StoreError> {
        self.fs
            .append(WAL_FILE, &frame(&encode_entry(key, seq, samples)))?;
        Ok(())
    }

    /// Read back the valid prefix of the log. A missing file is an empty
    /// log; a torn tail sets `torn` and is otherwise silent — it is
    /// where durable history ends.
    pub fn replay(&self) -> Result<WalReplay, StoreError> {
        let buf = match self.fs.read(WAL_FILE) {
            Ok(b) => b,
            Err(FsError::NotFound(_)) => {
                return Ok(WalReplay {
                    entries: Vec::new(),
                    torn: false,
                })
            }
            Err(e) => return Err(e.into()),
        };
        let scan = scan_stream(&buf);
        let mut entries = Vec::with_capacity(scan.records.len());
        for record in &scan.records {
            // A frame that checksums but does not decode is a framing
            // bug, not a torn tail — surface it.
            entries.push(decode_entry(record)?);
        }
        Ok(WalReplay {
            entries,
            torn: scan.torn,
        })
    }

    /// Cut a torn tail off the on-medium log so future appends extend
    /// valid history instead of burying garbage mid-stream. No-op when
    /// the log is clean or absent.
    pub fn truncate_to_valid(&self) -> Result<(), StoreError> {
        let buf = match self.fs.read(WAL_FILE) {
            Ok(b) => b,
            Err(FsError::NotFound(_)) => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        let scan = scan_stream(&buf);
        if !scan.torn {
            return Ok(());
        }
        self.rewrite(&buf[..scan.valid_len])
    }

    /// Drop entries for `key` whose sequence numbers appear in `seqs`
    /// (they are absorbed into a durable snapshot and thus redundant).
    /// Returns how many were removed. Rewrites only the valid prefix —
    /// compaction doubles as tail truncation.
    pub fn compact(&self, key: &str, seqs: &[u64]) -> Result<usize, StoreError> {
        let buf = match self.fs.read(WAL_FILE) {
            Ok(b) => b,
            Err(FsError::NotFound(_)) => return Ok(0),
            Err(e) => return Err(e.into()),
        };
        let scan = scan_stream(&buf);
        let mut kept = Vec::new();
        let mut removed = 0usize;
        for record in &scan.records {
            let entry = decode_entry(record)?;
            if entry.key == key && seqs.contains(&entry.seq) {
                removed += 1;
            } else {
                kept.extend_from_slice(&frame(record));
            }
        }
        if removed == 0 && !scan.torn {
            return Ok(0);
        }
        self.rewrite(&kept)?;
        Ok(removed)
    }

    /// Replace the log atomically: temp write → read-back verify →
    /// rename. A torn rename leaves the old log intact (the destination
    /// pre-exists and survives), so single-fault compaction either
    /// happens completely or not at all — and redundant entries replayed
    /// later are idempotent upstream.
    fn rewrite(&self, bytes: &[u8]) -> Result<(), StoreError> {
        let tmp = format!(
            "{WAL_TMP_PREFIX}{}",
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        );
        self.fs.write(&tmp, bytes)?;
        let back = self.fs.read(&tmp)?;
        if back != bytes {
            return Err(StoreError::Corrupt(
                "read-back mismatch rewriting wal".into(),
            ));
        }
        self.fs.rename(&tmp, WAL_FILE)?;
        Ok(())
    }
}

fn encode_entry(key: &str, seq: u64, samples: &[Vec<f64>]) -> Vec<u8> {
    let dim = samples.first().map(|row| row.len().max(1) - 1).unwrap_or(0);
    let mut out = Vec::new();
    put_str(&mut out, key);
    put_u64(&mut out, seq);
    put_u16(&mut out, dim as u16);
    put_u32(&mut out, samples.len() as u32);
    for row in samples {
        assert_eq!(row.len(), dim + 1, "ragged WAL batch");
        for &v in row {
            put_f64(&mut out, v);
        }
    }
    out
}

fn decode_entry(payload: &[u8]) -> Result<WalEntry, StoreError> {
    let mut r = Reader::new(payload);
    let key = r.take_str("wal key")?;
    let seq = r.take_u64("wal seq")?;
    let dim = r.take_u16("wal dim")? as usize;
    let count = r.take_u32("wal batch count")? as usize;
    let mut samples = Vec::with_capacity(count.min(payload.len() / 8 + 1));
    for _ in 0..count {
        let mut row = Vec::with_capacity(dim + 1);
        for _ in 0..dim + 1 {
            row.push(r.take_f64("wal sample")?);
        }
        samples.push(row);
    }
    if !r.is_empty() {
        return Err(StoreError::Corrupt("trailing wal entry bytes".into()));
    }
    Ok(WalEntry { key, seq, samples })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::MemFs;

    fn batch(base: f64) -> Vec<Vec<f64>> {
        vec![vec![base, base + 1.0, base + 2.0], vec![base, base, base]]
    }

    #[test]
    fn append_replay_roundtrip() {
        let wal = TelemetryWal::open(Arc::new(MemFs::new()));
        wal.append("a", 0, &batch(1.0)).unwrap();
        wal.append("b", 0, &batch(2.0)).unwrap();
        wal.append("a", 1, &batch(3.0)).unwrap();
        let replay = wal.replay().unwrap();
        assert!(!replay.torn);
        assert_eq!(replay.entries.len(), 3);
        assert_eq!(replay.entries[0].key, "a");
        assert_eq!(replay.entries[0].seq, 0);
        assert_eq!(replay.entries[0].samples, batch(1.0));
        assert_eq!(replay.entries[2].seq, 1);
    }

    #[test]
    fn missing_log_is_empty() {
        let wal = TelemetryWal::open(Arc::new(MemFs::new()));
        let replay = wal.replay().unwrap();
        assert!(replay.entries.is_empty());
        assert!(!replay.torn);
        assert_eq!(wal.compact("a", &[0]).unwrap(), 0);
        wal.truncate_to_valid().unwrap();
    }

    #[test]
    fn torn_tail_is_discarded_then_truncated() {
        let fs = Arc::new(MemFs::new());
        let wal = TelemetryWal::open(fs.clone());
        wal.append("a", 0, &batch(1.0)).unwrap();
        wal.append("a", 1, &batch(2.0)).unwrap();
        // Tear the last few bytes off the log (crash mid-append).
        let buf = fs.read("wal").unwrap();
        fs.write("wal", &buf[..buf.len() - 5]).unwrap();
        let replay = wal.replay().unwrap();
        assert!(replay.torn);
        assert_eq!(replay.entries.len(), 1, "torn entry discarded");
        wal.truncate_to_valid().unwrap();
        let replay = wal.replay().unwrap();
        assert!(!replay.torn, "truncation removed the torn tail");
        assert_eq!(replay.entries.len(), 1);
        // Appends after truncation extend valid history.
        wal.append("a", 2, &batch(3.0)).unwrap();
        assert_eq!(wal.replay().unwrap().entries.len(), 2);
    }

    #[test]
    fn compact_removes_only_named_entries() {
        let wal = TelemetryWal::open(Arc::new(MemFs::new()));
        wal.append("a", 0, &batch(1.0)).unwrap();
        wal.append("b", 7, &batch(2.0)).unwrap();
        wal.append("a", 1, &batch(3.0)).unwrap();
        assert_eq!(wal.compact("a", &[0, 1]).unwrap(), 2);
        let replay = wal.replay().unwrap();
        assert_eq!(replay.entries.len(), 1);
        assert_eq!(replay.entries[0].key, "b");
        assert_eq!(replay.entries[0].seq, 7);
        // Seq numbers are per-key: compacting "b"'s seq 7 under key "a"
        // removes nothing.
        assert_eq!(wal.compact("a", &[7]).unwrap(), 0);
    }

    #[test]
    fn empty_batch_roundtrips() {
        let wal = TelemetryWal::open(Arc::new(MemFs::new()));
        wal.append("a", 0, &[]).unwrap();
        let replay = wal.replay().unwrap();
        assert_eq!(replay.entries[0].samples.len(), 0);
    }
}
