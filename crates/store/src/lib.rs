//! # cpr_store — crash-safe durability for the model fleet
//!
//! This crate makes the serving fleet survive process death and media
//! corruption. It has no opinion about *what* the bytes mean — model
//! wire formats live in `cpr_core`, fleet wiring in `cpr_registry`;
//! this crate only promises that what was committed is what comes back,
//! or nothing at all:
//!
//! * [`SnapshotStore`] — per-model checksummed records behind a
//!   generation-numbered manifest. A commit is a single atomic rename;
//!   recovery always yields a **complete** fleet from the newest fully
//!   valid generation — never a torn model, never a new/old mix.
//! * [`TelemetryWal`] — an append-only checksummed log of submitted
//!   sample batches. Replay consumes the longest valid prefix (a torn
//!   tail is where durable history ends, not an error); compaction
//!   drops batches a durable snapshot has made redundant.
//! * [`StoreFs`] — the virtual filesystem both run on: [`StdFs`] for
//!   production, [`MemFs`] for tests, and [`FaultFs`] injecting short
//!   writes, torn renames, bit flips, and ENOSPC at exact operation
//!   counts — the IO twin of the refit pipeline's `FaultInjector`, and
//!   what the crash-matrix tests drive.
//! * [`FleetStore`] — the two stores over one filesystem, the handle
//!   `cpr_registry` persists through and restores from.
//!
//! ```
//! use cpr_store::{FleetStore, MemFs};
//! use std::sync::Arc;
//!
//! let store = FleetStore::open(Arc::new(MemFs::new())).unwrap();
//! store.snapshots().persist("app\u{1f}host\u{1f}latency", b"wire bytes").unwrap();
//! store.wal().append("app\u{1f}host\u{1f}latency", 0, &[vec![1.0, 2.0, 0.5]]).unwrap();
//!
//! // A restart sees exactly what was committed.
//! let fleet = store.snapshots().load().unwrap();
//! assert_eq!(fleet.generation, 1);
//! assert_eq!(fleet.get("app\u{1f}host\u{1f}latency").unwrap(), b"wire bytes");
//! assert_eq!(store.wal().replay().unwrap().entries.len(), 1);
//! ```

mod codec;
pub mod fs;
pub mod record;
pub mod snapshot;
pub mod wal;

pub use fs::{Fault, FaultFs, FsError, MemFs, StdFs, StoreFs};
pub use record::{crc32, frame, read_frame, read_single, scan_stream, StreamScan, FRAME_OVERHEAD};
pub use snapshot::{FleetSnapshot, SnapshotStore};
pub use wal::{TelemetryWal, WalEntry, WalLimits, WalReplay};

use std::fmt;
use std::sync::Arc;

/// Errors from the store: either the filesystem failed, or bytes on the
/// medium do not verify. Recovery paths treat `Corrupt` as "this
/// generation/record is dead, fall back" — it never aborts a process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The backing filesystem failed.
    Fs(FsError),
    /// Bytes on the medium fail checksum or structural validation.
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Fs(e) => write!(f, "store fs error: {e}"),
            Self::Corrupt(msg) => write!(f, "store corruption: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Fs(e) => Some(e),
            Self::Corrupt(_) => None,
        }
    }
}

impl From<FsError> for StoreError {
    fn from(e: FsError) -> Self {
        Self::Fs(e)
    }
}

/// The durability handle the fleet runtime holds: snapshot store and
/// telemetry WAL sharing one [`StoreFs`] (one directory in production).
pub struct FleetStore {
    snapshots: SnapshotStore,
    wal: TelemetryWal,
}

impl FleetStore {
    /// Open both stores over `fs`, recovering the snapshot index.
    pub fn open(fs: Arc<dyn StoreFs>) -> Result<Self, StoreError> {
        Ok(Self {
            snapshots: SnapshotStore::open(fs.clone())?,
            wal: TelemetryWal::open(fs),
        })
    }

    /// Open over a real directory on the local filesystem.
    pub fn open_dir(root: impl Into<std::path::PathBuf>) -> Result<Self, StoreError> {
        Self::open(Arc::new(StdFs::open(root)?))
    }

    /// Open with explicit WAL growth caps (see [`WalLimits`]).
    pub fn open_with_wal_limits(
        fs: Arc<dyn StoreFs>,
        limits: WalLimits,
    ) -> Result<Self, StoreError> {
        Ok(Self {
            snapshots: SnapshotStore::open(fs.clone())?,
            wal: TelemetryWal::open_with_limits(fs, limits),
        })
    }

    /// The model snapshot store.
    pub fn snapshots(&self) -> &SnapshotStore {
        &self.snapshots
    }

    /// The telemetry write-ahead log.
    pub fn wal(&self) -> &TelemetryWal {
        &self.wal
    }

    /// Report this store's activity into a shared observability hub:
    /// WAL appends/rotations as `cpr_wal_*` counters (seeded with
    /// whatever happened before the attach, so exported totals cover the
    /// handle's whole lifetime) plus `wal_rotate` trace events, and
    /// snapshot persist/commit/restore latency as `cpr_store_*_us`
    /// histograms. Idempotent; the first hub attached wins.
    pub fn attach_obs(&self, obs: std::sync::Arc<cpr_obs::MetricsRegistry>) {
        self.wal.attach_obs(&obs);
        self.snapshots.attach_obs(&obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_store_shares_one_namespace() {
        let fs = Arc::new(MemFs::new());
        let store = FleetStore::open(fs.clone()).unwrap();
        store.snapshots().persist("m", b"model").unwrap();
        store.wal().append("m", 0, &[vec![1.0, 2.0]]).unwrap();
        let names = fs.list().unwrap();
        assert!(names.iter().any(|n| n == "wal"), "{names:?}");
        assert!(
            names.iter().any(|n| n.starts_with("manifest-")),
            "{names:?}"
        );
        // Snapshot GC never touches the WAL.
        for g in 0..5u8 {
            store.snapshots().persist("m", &[g; 4]).unwrap();
        }
        assert_eq!(store.wal().replay().unwrap().entries.len(), 1);
    }

    #[test]
    fn errors_display_and_convert() {
        let e: StoreError = FsError::NotFound("x".into()).into();
        assert!(e.to_string().contains("no such file"));
        assert!(StoreError::Corrupt("bad".into())
            .to_string()
            .contains("bad"));
    }
}
