//! The checksummed model-snapshot store.
//!
//! Directory layout (flat, all names under the store's [`StoreFs`]):
//!
//! ```text
//! snap-<gen>-<k>.rec    one framed model record (payload = wire bytes)
//! manifest-<gen>        framed manifest: generation + entry table
//! tmp-<n>               in-flight writes, renamed into place or garbage
//! ```
//!
//! ## The commit protocol
//!
//! A commit (single-model [`SnapshotStore::persist`] or whole-fleet
//! [`SnapshotStore::commit_fleet`]) bumps the generation and then:
//!
//! 1. writes each new model record to a `tmp-` file, **reads it back**
//!    and verifies the frame (silent media corruption — a bit flip
//!    between buffer and platter — becomes a failed commit instead of a
//!    poisoned snapshot), then renames it to its `snap-` name;
//! 2. writes the new manifest the same way (tmp → verify → rename).
//!    The manifest rename is the **commit point**: until it lands, the
//!    previous manifest is the newest valid one and recovery serves the
//!    previous fleet; after it, the new fleet. There is no intermediate
//!    observable state — which is exactly what the crash matrix pins;
//! 3. garbage-collects: keeps the two newest valid manifests and every
//!    record they reference, deletes the rest (older manifests, orphaned
//!    records, stale temp files). Keeping *two* generations means a
//!    checksum failure in the newest can always fall back one whole
//!    generation. GC failures are swallowed — collecting garbage later
//!    is always safe.
//!
//! ## Recovery
//!
//! [`SnapshotStore::load`] scans manifests newest-first and returns the
//! fleet of the first manifest whose own frame *and every referenced
//! record* (existence, length, checksum — checked against both the
//! record footer and the manifest's copy) verify. A torn commit, a torn
//! rename, or a corrupt record therefore yields the complete previous
//! fleet — never a mix, never a torn model.

use crate::codec::{put_str, put_u32, put_u64, Reader};
use crate::fs::StoreFs;
use crate::record::{crc32, frame, read_single};
use crate::StoreError;
use cpr_obs::{Histogram, MetricsRegistry};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

const MANIFEST_PREFIX: &str = "manifest-";
const SNAP_PREFIX: &str = "snap-";
const TMP_PREFIX: &str = "tmp-";
/// Valid manifests (and their referenced records) retained by GC. Two,
/// so recovery can always fall back a full generation.
const KEPT_MANIFESTS: usize = 2;

/// One entry in the in-memory index: where a model's current record
/// lives and what it must hash to.
#[derive(Debug, Clone, PartialEq, Eq)]
struct EntryRef {
    file: String,
    len: u32,
    crc: u32,
}

/// A decoded manifest: its generation number plus the key → record index
/// it commits.
type Manifest = (u64, BTreeMap<String, EntryRef>);

struct SnapState {
    generation: u64,
    entries: BTreeMap<String, EntryRef>,
    tmp_counter: u64,
}

/// A complete recovered fleet: the newest durable generation and every
/// model's verified wire bytes, sorted by key.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSnapshot {
    /// Generation of the manifest this fleet came from; 0 when the store
    /// holds no valid manifest (fresh directory, or nothing survived).
    pub generation: u64,
    /// `(key, payload)` pairs, checksum-verified, sorted by key.
    pub models: Vec<(String, Vec<u8>)>,
}

impl FleetSnapshot {
    /// Bytes for one key.
    pub fn get(&self, key: &str) -> Option<&[u8]> {
        self.models
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.models[i].1.as_slice())
    }
}

/// Crash-safe, checksummed per-model snapshot storage. See the module
/// docs for the commit protocol and recovery rule. All methods are
/// callable from any thread; commits serialize on an internal mutex.
pub struct SnapshotStore {
    fs: Arc<dyn StoreFs>,
    state: Mutex<SnapState>,
    /// Commit/recovery latency histograms, attached late (the store
    /// opens before any observability hub exists). Untimed until then.
    obs: OnceLock<SnapObs>,
}

struct SnapObs {
    persist_us: Histogram,
    restore_us: Histogram,
}

impl SnapshotStore {
    /// Open a store over `fs`, recovering the newest durable generation
    /// as the starting index (a fresh directory starts at generation 0).
    pub fn open(fs: Arc<dyn StoreFs>) -> Result<Self, StoreError> {
        let recovered = Self::scan(fs.as_ref())?;
        let entries = match &recovered {
            Some((_, manifest)) => manifest.clone(),
            None => BTreeMap::new(),
        };
        Ok(Self {
            fs,
            state: Mutex::new(SnapState {
                generation: recovered.map(|(gen, _)| gen).unwrap_or(0),
                entries,
                tmp_counter: 0,
            }),
            obs: OnceLock::new(),
        })
    }

    /// Time commits and recoveries into `obs` (`cpr_store_persist_us`,
    /// `cpr_store_restore_us`). Idempotent; the first hub attached wins.
    pub fn attach_obs(&self, obs: &Arc<MetricsRegistry>) {
        let _ = self.obs.set(SnapObs {
            persist_us: obs.histogram("cpr_store_persist_us"),
            restore_us: obs.histogram("cpr_store_restore_us"),
        });
    }

    /// The filesystem this store runs on.
    pub fn fs(&self) -> &Arc<dyn StoreFs> {
        &self.fs
    }

    /// The newest committed generation (0 before the first commit).
    pub fn generation(&self) -> u64 {
        self.lock().generation
    }

    /// Keys in the current generation, sorted.
    pub fn keys(&self) -> Vec<String> {
        self.lock().entries.keys().cloned().collect()
    }

    fn lock(&self) -> MutexGuard<'_, SnapState> {
        self.state.lock().expect("snapshot store poisoned")
    }

    /// Persist (insert or replace) one model's payload as a new
    /// generation; every other model carries over by reference. Returns
    /// the committed generation.
    pub fn persist(&self, key: &str, payload: &[u8]) -> Result<u64, StoreError> {
        self.commit(vec![(key.to_string(), payload.to_vec())], false)
    }

    /// Replace the whole fleet in one commit: models absent from
    /// `models` are dropped from the new generation. Returns the
    /// committed generation.
    pub fn commit_fleet(&self, models: Vec<(String, Vec<u8>)>) -> Result<u64, StoreError> {
        self.commit(models, true)
    }

    fn commit(
        &self,
        updates: Vec<(String, Vec<u8>)>,
        replace_fleet: bool,
    ) -> Result<u64, StoreError> {
        let t = self.obs.get().map(|_| Instant::now());
        let mut st = self.lock();
        let gen = st.generation + 1;
        // Stage the new index before touching the medium; `st.entries`
        // is only replaced after the manifest rename commits.
        let mut next: BTreeMap<String, EntryRef> = if replace_fleet {
            BTreeMap::new()
        } else {
            st.entries.clone()
        };
        for (k, (key, payload)) in updates.iter().enumerate() {
            let file = format!("{SNAP_PREFIX}{gen:016x}-{k}.rec");
            let record = frame(payload);
            self.write_verified(&mut st, &file, &record)?;
            next.insert(
                key.clone(),
                EntryRef {
                    file,
                    len: payload.len() as u32,
                    crc: crc32(payload),
                },
            );
        }
        let manifest = frame(&encode_manifest(gen, &next));
        self.write_verified(&mut st, &format!("{MANIFEST_PREFIX}{gen:016x}"), &manifest)?;
        // Commit point passed: adopt the new index, then collect garbage.
        st.generation = gen;
        st.entries = next;
        self.gc(&st);
        if let (Some(t), Some(o)) = (t, self.obs.get()) {
            o.persist_us.record_duration(t.elapsed());
        }
        Ok(gen)
    }

    /// Write `bytes` to a temp file, read them back and verify, then
    /// rename into `dest`. The read-back turns silent write corruption
    /// into a failed commit; the rename keeps every destination name
    /// all-or-nothing.
    fn write_verified(
        &self,
        st: &mut SnapState,
        dest: &str,
        bytes: &[u8],
    ) -> Result<(), StoreError> {
        let tmp = format!("{TMP_PREFIX}{}", st.tmp_counter);
        st.tmp_counter += 1;
        self.fs.write(&tmp, bytes)?;
        let back = self.fs.read(&tmp)?;
        if back != bytes {
            // Leave the bad temp for GC; the commit fails cleanly.
            return Err(StoreError::Corrupt(format!(
                "read-back mismatch writing {dest}"
            )));
        }
        self.fs.rename(&tmp, dest)?;
        Ok(())
    }

    /// Best-effort cleanup: keep the [`KEPT_MANIFESTS`] newest valid
    /// manifests and everything they reference; remove other store files
    /// (older manifests, orphaned records, stale temps). Never touches
    /// names outside the store's prefixes — the WAL shares the
    /// directory.
    fn gc(&self, _st: &SnapState) {
        let Ok(names) = self.fs.list() else { return };
        let mut manifests: Vec<&String> = names
            .iter()
            .filter(|n| n.starts_with(MANIFEST_PREFIX))
            .collect();
        manifests.sort();
        manifests.reverse(); // newest first (fixed-width hex generation)
        let mut keep: Vec<String> = Vec::new();
        let mut kept_manifests = 0usize;
        for name in manifests {
            if kept_manifests >= KEPT_MANIFESTS {
                break;
            }
            if let Ok(Some((_, entries))) = self.read_manifest(name) {
                kept_manifests += 1;
                keep.push(name.clone());
                for e in entries.values() {
                    keep.push(e.file.clone());
                }
            }
            // An invalid manifest is *not* kept — but its deletion below
            // is as best-effort as everything else here.
        }
        for name in &names {
            let ours = name.starts_with(MANIFEST_PREFIX)
                || name.starts_with(SNAP_PREFIX)
                || name.starts_with(TMP_PREFIX);
            if ours && !keep.contains(name) {
                let _ = self.fs.remove(name);
            }
        }
    }

    /// Read and decode one manifest file; `Ok(None)` when the frame or
    /// payload does not verify (recovery falls through to an older one).
    fn read_manifest(&self, name: &str) -> Result<Option<Manifest>, StoreError> {
        Self::read_manifest_on(self.fs.as_ref(), name)
    }

    fn read_manifest_on(fs: &dyn StoreFs, name: &str) -> Result<Option<Manifest>, StoreError> {
        let bytes = match fs.read(name) {
            Ok(b) => b,
            Err(crate::FsError::NotFound(_)) => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let Ok(payload) = read_single(&bytes) else {
            return Ok(None);
        };
        Ok(decode_manifest(payload).ok())
    }

    /// Newest manifest (with all referenced records verified), scanning
    /// newest-first. `None` when nothing durable exists.
    fn scan(fs: &dyn StoreFs) -> Result<Option<Manifest>, StoreError> {
        let mut manifests: Vec<String> = fs
            .list()?
            .into_iter()
            .filter(|n| n.starts_with(MANIFEST_PREFIX))
            .collect();
        manifests.sort();
        manifests.reverse();
        for name in &manifests {
            let Some((gen, entries)) = Self::read_manifest_on(fs, name)? else {
                continue;
            };
            if Self::verify_entries(fs, &entries) {
                return Ok(Some((gen, entries)));
            }
        }
        Ok(None)
    }

    /// Do all of a manifest's referenced records exist and verify
    /// (frame checksum *and* the manifest's recorded length + CRC)?
    fn verify_entries(fs: &dyn StoreFs, entries: &BTreeMap<String, EntryRef>) -> bool {
        entries.values().all(|e| {
            let Ok(bytes) = fs.read(&e.file) else {
                return false;
            };
            let Ok(payload) = read_single(&bytes) else {
                return false;
            };
            payload.len() == e.len as usize && crc32(payload) == e.crc
        })
    }

    /// Recover the newest durable fleet — a fresh scan of the medium,
    /// every record checksum-verified. An empty store yields generation
    /// 0 and no models.
    pub fn load(&self) -> Result<FleetSnapshot, StoreError> {
        let t = self.obs.get().map(|_| Instant::now());
        let Some((generation, entries)) = Self::scan(self.fs.as_ref())? else {
            return Ok(FleetSnapshot {
                generation: 0,
                models: Vec::new(),
            });
        };
        let mut models = Vec::with_capacity(entries.len());
        for (key, e) in &entries {
            // Verified by `scan` already; re-read under the same checks
            // so a race with a concurrent commit's GC can only surface
            // as a clean retryable error, never unverified bytes.
            let bytes = self.fs.read(&e.file)?;
            let payload = read_single(&bytes)?;
            if payload.len() != e.len as usize || crc32(payload) != e.crc {
                return Err(StoreError::Corrupt(format!(
                    "record {} changed between verify and load",
                    e.file
                )));
            }
            models.push((key.clone(), payload.to_vec()));
        }
        if let (Some(t), Some(o)) = (t, self.obs.get()) {
            o.restore_us.record_duration(t.elapsed());
        }
        Ok(FleetSnapshot { generation, models })
    }
}

fn encode_manifest(generation: u64, entries: &BTreeMap<String, EntryRef>) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, generation);
    put_u32(&mut out, entries.len() as u32);
    for (key, e) in entries {
        put_str(&mut out, key);
        put_str(&mut out, &e.file);
        put_u32(&mut out, e.len);
        put_u32(&mut out, e.crc);
    }
    out
}

fn decode_manifest(payload: &[u8]) -> Result<(u64, BTreeMap<String, EntryRef>), StoreError> {
    let mut r = Reader::new(payload);
    let generation = r.take_u64("manifest generation")?;
    let count = r.take_u32("manifest entry count")? as usize;
    let mut entries = BTreeMap::new();
    for _ in 0..count {
        let key = r.take_str("manifest key")?;
        let file = r.take_str("manifest file name")?;
        let len = r.take_u32("manifest record length")?;
        let crc = r.take_u32("manifest record crc")?;
        entries.insert(key, EntryRef { file, len, crc });
    }
    if !r.is_empty() {
        return Err(StoreError::Corrupt("trailing manifest bytes".into()));
    }
    Ok((generation, entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::MemFs;

    fn store() -> (Arc<MemFs>, SnapshotStore) {
        let fs = Arc::new(MemFs::new());
        let store = SnapshotStore::open(fs.clone()).unwrap();
        (fs, store)
    }

    #[test]
    fn empty_store_loads_generation_zero() {
        let (_, store) = store();
        let fleet = store.load().unwrap();
        assert_eq!(fleet.generation, 0);
        assert!(fleet.models.is_empty());
    }

    #[test]
    fn persist_and_reload_across_reopen() {
        let (fs, store) = store();
        assert_eq!(store.persist("a", b"alpha-bytes").unwrap(), 1);
        assert_eq!(store.persist("b", b"beta-bytes").unwrap(), 2);
        assert_eq!(store.persist("a", b"alpha-v2").unwrap(), 3);
        let fleet = store.load().unwrap();
        assert_eq!(fleet.generation, 3);
        assert_eq!(fleet.get("a").unwrap(), b"alpha-v2");
        assert_eq!(fleet.get("b").unwrap(), b"beta-bytes");
        // A reopen (the restart path) recovers the same state and keeps
        // the generation counter moving forward.
        let reopened = SnapshotStore::open(fs).unwrap();
        assert_eq!(reopened.generation(), 3);
        assert_eq!(reopened.keys(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(reopened.persist("c", b"gamma").unwrap(), 4);
    }

    #[test]
    fn commit_fleet_replaces_everything() {
        let (_, store) = store();
        store.persist("old", b"gone-after-fleet-commit").unwrap();
        store
            .commit_fleet(vec![
                ("x".to_string(), b"xx".to_vec()),
                ("y".to_string(), b"yy".to_vec()),
            ])
            .unwrap();
        let fleet = store.load().unwrap();
        assert_eq!(fleet.models.len(), 2);
        assert!(fleet.get("old").is_none());
        assert_eq!(fleet.get("x").unwrap(), b"xx");
    }

    #[test]
    fn corrupt_newest_record_falls_back_one_generation() {
        let (fs, store) = store();
        store.persist("m", b"generation-one").unwrap();
        store.persist("m", b"generation-two").unwrap();
        // Stomp the generation-2 record on the medium.
        let victim = fs
            .list()
            .unwrap()
            .into_iter()
            .find(|n| n.starts_with("snap-0000000000000002"))
            .expect("gen-2 record exists");
        let mut bytes = fs.read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs.write(&victim, &bytes).unwrap();
        let fleet = store.load().unwrap();
        assert_eq!(fleet.generation, 1, "recovery must fall back a generation");
        assert_eq!(fleet.get("m").unwrap(), b"generation-one");
    }

    #[test]
    fn gc_keeps_exactly_two_generations() {
        let (fs, store) = store();
        for g in 0..6u8 {
            store.persist("m", &[g; 8]).unwrap();
        }
        let names = fs.list().unwrap();
        let manifests = names.iter().filter(|n| n.starts_with("manifest-")).count();
        assert_eq!(manifests, 2, "GC keeps the two newest manifests: {names:?}");
        assert!(
            !names.iter().any(|n| n.starts_with("tmp-")),
            "temp files collected: {names:?}"
        );
        // Both retained generations must load.
        assert_eq!(store.load().unwrap().get("m").unwrap(), &[5u8; 8]);
    }

    #[test]
    fn unchanged_models_carry_over_by_reference() {
        let (fs, store) = store();
        store.persist("big", &vec![7u8; 4096]).unwrap();
        let records_before = fs
            .list()
            .unwrap()
            .iter()
            .filter(|n| n.starts_with("snap-"))
            .count();
        store.persist("small", b"tiny").unwrap();
        let names = fs.list().unwrap();
        let records_after = names.iter().filter(|n| n.starts_with("snap-")).count();
        // One new record for "small"; "big" was not rewritten.
        assert_eq!(records_after, records_before + 1, "{names:?}");
        let fleet = store.load().unwrap();
        assert_eq!(fleet.get("big").unwrap(), &vec![7u8; 4096][..]);
    }
}
