//! The virtual filesystem the store runs on.
//!
//! Everything durable in this crate goes through [`StoreFs`] — a small,
//! object-safe set of file operations over a **flat namespace** (no
//! directories; the store encodes structure in file names). Three
//! implementations:
//!
//! * [`StdFs`] — the production backend: real files rooted in one
//!   directory via `std::fs`, with `sync_all` on every write so a
//!   completed operation is on the platter, not in a page cache.
//! * [`MemFs`] — an in-memory map, for tests and benchmarks that want
//!   store semantics without disk.
//! * [`FaultFs`] — the IO twin of the refit pipeline's `FaultInjector`:
//!   wraps any backend and injects **short writes, torn renames, bit
//!   flips, and ENOSPC at exact operation counts**, then (for the
//!   crash-shaped faults) fails every subsequent call as a dead process
//!   would. A recovery test reopens the wrapped backend and asserts what
//!   a restart can see.
//!
//! The durability contract the store layers on top: `write` is
//! all-or-nothing only on [`MemFs`]; on a real filesystem a crash can
//! leave a prefix. `rename` is atomic on the platforms `StdFs` targets
//! (POSIX rename). That asymmetry is exactly why the snapshot/WAL
//! protocols only ever `rename` complete, checksummed temp files into
//! place — and why [`FaultFs`] models a *torn* rename (source gone,
//! destination missing) as its worst case, so recovery is tested against
//! semantics strictly weaker than what POSIX promises.

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Errors surfaced by a [`StoreFs`] backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// The named file does not exist.
    NotFound(String),
    /// The device is out of space; nothing was written. Recoverable —
    /// the caller keeps running and may retry after compaction.
    NoSpace(String),
    /// The simulated process died mid-operation ([`FaultFs`] only).
    /// Every subsequent call fails the same way; only reopening the
    /// wrapped backend — a restart — can observe the surviving bytes.
    Crashed(String),
    /// Any other IO failure, stringly (std::io::Error is not `Clone`).
    Io(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotFound(p) => write!(f, "no such file: {p}"),
            Self::NoSpace(p) => write!(f, "no space writing {p}"),
            Self::Crashed(p) => write!(f, "process crashed during {p}"),
            Self::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for FsError {}

/// The file operations the store needs, object-safe so the snapshot and
/// WAL layers can hold `Arc<dyn StoreFs>` and stay non-generic. All
/// methods are callable from any thread; implementations serialize
/// internally where the backing medium needs it.
pub trait StoreFs: Send + Sync {
    /// Read a whole file.
    fn read(&self, path: &str) -> Result<Vec<u8>, FsError>;
    /// Create-or-truncate a whole file. Durable (synced) on return.
    fn write(&self, path: &str, bytes: &[u8]) -> Result<(), FsError>;
    /// Append to a file, creating it if missing. Durable on return.
    fn append(&self, path: &str, bytes: &[u8]) -> Result<(), FsError>;
    /// Atomically rename `from` over `to` (replacing any existing `to`).
    fn rename(&self, from: &str, to: &str) -> Result<(), FsError>;
    /// Delete a file.
    fn remove(&self, path: &str) -> Result<(), FsError>;
    /// All file names, sorted.
    fn list(&self) -> Result<Vec<String>, FsError>;
}

// ---------------------------------------------------------------------
// MemFs

/// In-memory [`StoreFs`]: a mutex-guarded name → bytes map. The backend
/// under [`FaultFs`] in the crash-matrix tests, and the zero-IO backend
/// for doctests and benchmarks.
#[derive(Debug, Default)]
pub struct MemFs {
    files: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl MemFs {
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Vec<u8>>> {
        self.files.lock().expect("memfs poisoned")
    }
}

impl StoreFs for MemFs {
    fn read(&self, path: &str) -> Result<Vec<u8>, FsError> {
        self.lock()
            .get(path)
            .cloned()
            .ok_or_else(|| FsError::NotFound(path.to_string()))
    }

    fn write(&self, path: &str, bytes: &[u8]) -> Result<(), FsError> {
        self.lock().insert(path.to_string(), bytes.to_vec());
        Ok(())
    }

    fn append(&self, path: &str, bytes: &[u8]) -> Result<(), FsError> {
        self.lock()
            .entry(path.to_string())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), FsError> {
        let mut files = self.lock();
        let data = files
            .remove(from)
            .ok_or_else(|| FsError::NotFound(from.to_string()))?;
        files.insert(to.to_string(), data);
        Ok(())
    }

    fn remove(&self, path: &str) -> Result<(), FsError> {
        self.lock()
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| FsError::NotFound(path.to_string()))
    }

    fn list(&self) -> Result<Vec<String>, FsError> {
        Ok(self.lock().keys().cloned().collect())
    }
}

// ---------------------------------------------------------------------
// StdFs

/// Real-filesystem [`StoreFs`] rooted at one directory. File names must
/// be plain (no path separators) — the root is the store's whole world,
/// which keeps a misconfigured path from ever escaping it.
#[derive(Debug)]
pub struct StdFs {
    root: PathBuf,
}

impl StdFs {
    /// Open (creating if needed) a store directory.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, FsError> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| FsError::Io(format!("mkdir {root:?}: {e}")))?;
        Ok(Self { root })
    }

    fn path(&self, name: &str) -> Result<PathBuf, FsError> {
        if name.is_empty() || name.contains(['/', '\\']) || name == "." || name == ".." {
            return Err(FsError::Io(format!("illegal store file name {name:?}")));
        }
        Ok(self.root.join(name))
    }

    fn map_io(path: &str, e: std::io::Error) -> FsError {
        match e.kind() {
            std::io::ErrorKind::NotFound => FsError::NotFound(path.to_string()),
            std::io::ErrorKind::StorageFull => FsError::NoSpace(path.to_string()),
            _ => FsError::Io(format!("{path}: {e}")),
        }
    }
}

impl StoreFs for StdFs {
    fn read(&self, path: &str) -> Result<Vec<u8>, FsError> {
        std::fs::read(self.path(path)?).map_err(|e| Self::map_io(path, e))
    }

    fn write(&self, path: &str, bytes: &[u8]) -> Result<(), FsError> {
        let full = self.path(path)?;
        let mut f = std::fs::File::create(&full).map_err(|e| Self::map_io(path, e))?;
        f.write_all(bytes).map_err(|e| Self::map_io(path, e))?;
        f.sync_all().map_err(|e| Self::map_io(path, e))
    }

    fn append(&self, path: &str, bytes: &[u8]) -> Result<(), FsError> {
        let full = self.path(path)?;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&full)
            .map_err(|e| Self::map_io(path, e))?;
        f.write_all(bytes).map_err(|e| Self::map_io(path, e))?;
        f.sync_all().map_err(|e| Self::map_io(path, e))
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), FsError> {
        std::fs::rename(self.path(from)?, self.path(to)?).map_err(|e| Self::map_io(from, e))
    }

    fn remove(&self, path: &str) -> Result<(), FsError> {
        std::fs::remove_file(self.path(path)?).map_err(|e| Self::map_io(path, e))
    }

    fn list(&self) -> Result<Vec<String>, FsError> {
        let mut names = Vec::new();
        let dir =
            std::fs::read_dir(&self.root).map_err(|e| FsError::Io(format!("readdir: {e}")))?;
        for entry in dir {
            let entry = entry.map_err(|e| FsError::Io(format!("readdir: {e}")))?;
            if entry.path().is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }
}

// ---------------------------------------------------------------------
// FaultFs

/// One injectable IO fault, armed at an exact mutating-operation index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The operation does not happen at all; the process is dead from
    /// here (every later call returns [`FsError::Crashed`]).
    Crash,
    /// `write`/`append` persist only the first `keep` bytes, then the
    /// process dies — the on-disk prefix a real crash mid-write leaves.
    /// On operations with no data payload this degrades to [`Fault::Crash`].
    ShortWrite {
        /// Bytes that make it to the medium before the crash.
        keep: usize,
    },
    /// `rename` removes the source without creating the destination,
    /// then the process dies — the worst case of a non-atomic rename.
    /// On other operations this degrades to [`Fault::Crash`].
    TornRename,
    /// `write`/`append` succeed but with one bit of the payload flipped
    /// — silent media corruption. Execution continues; only a checksum
    /// can catch it. On operations with no data payload (or an empty
    /// payload) the flip has nothing to corrupt and the call passes
    /// through unchanged (the armed slot is still consumed).
    BitFlip {
        /// Which payload bit to flip (`bit % (len·8)`).
        bit: usize,
    },
    /// The operation fails with [`FsError::NoSpace`], nothing written.
    /// Recoverable: execution continues — disk-full is an error the
    /// caller must degrade through, not die from.
    NoSpace,
}

#[derive(Default)]
struct FaultState {
    /// Mutating operations performed so far (the schedule's index space).
    ops: AtomicU64,
    /// Armed faults by operation index. One-shot: firing removes them.
    armed: Mutex<BTreeMap<u64, Fault>>,
    /// Set once a crash-shaped fault fires; everything fails after.
    crashed: AtomicBool,
    /// Faults actually fired.
    fired: AtomicU64,
}

/// Deterministic fault-injecting [`StoreFs`] wrapper. Every *mutating*
/// operation (`write`, `append`, `rename`, `remove`) draws one index
/// from a global counter; a fault armed at that index fires exactly
/// once, then disarms. Crash-shaped faults ([`Fault::Crash`],
/// [`Fault::ShortWrite`], [`Fault::TornRename`]) leave the wrapper dead
/// — all later calls, reads included, return [`FsError::Crashed`] — so a
/// test "restarts" by reopening [`FaultFs::inner`], exactly the bytes a
/// rebooted process would find.
///
/// Reads and `list` do not consume indices: a fault schedule recorded
/// against a clean run stays aligned however often recovery re-reads.
#[derive(Clone)]
pub struct FaultFs {
    inner: Arc<dyn StoreFs>,
    state: Arc<FaultState>,
}

impl FaultFs {
    /// Wrap `inner` with nothing armed.
    pub fn new(inner: Arc<dyn StoreFs>) -> Self {
        Self {
            inner,
            state: Arc::new(FaultState::default()),
        }
    }

    /// Arm `fault` to fire on the mutating operation with index `op`
    /// (0-based over the wrapper's lifetime). Re-arming an index
    /// replaces its fault.
    pub fn arm(&self, op: u64, fault: Fault) -> &Self {
        self.state
            .armed
            .lock()
            .expect("fault schedule poisoned")
            .insert(op, fault);
        self
    }

    /// Mutating operations performed so far — run a scenario clean to
    /// size a kill-point matrix, then re-run with each index armed.
    pub fn ops(&self) -> u64 {
        self.state.ops.load(Ordering::Relaxed)
    }

    /// Faults fired so far.
    pub fn fired(&self) -> u64 {
        self.state.fired.load(Ordering::Relaxed)
    }

    /// Whether a crash-shaped fault has fired.
    pub fn is_crashed(&self) -> bool {
        self.state.crashed.load(Ordering::Relaxed)
    }

    /// The wrapped backend — what a post-crash restart can see.
    pub fn inner(&self) -> Arc<dyn StoreFs> {
        self.inner.clone()
    }

    fn check_alive(&self, what: &str) -> Result<(), FsError> {
        if self.state.crashed.load(Ordering::Relaxed) {
            Err(FsError::Crashed(what.to_string()))
        } else {
            Ok(())
        }
    }

    /// Draw the next op index and take its armed fault, if any.
    fn draw(&self) -> Option<Fault> {
        let index = self.state.ops.fetch_add(1, Ordering::Relaxed);
        let fault = self
            .state
            .armed
            .lock()
            .expect("fault schedule poisoned")
            .remove(&index);
        if fault.is_some() {
            self.state.fired.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }

    fn crash(&self, what: &str) -> FsError {
        self.state.crashed.store(true, Ordering::Relaxed);
        FsError::Crashed(what.to_string())
    }

    /// Shared write/append fault handling: returns the payload (possibly
    /// bit-flipped) to pass through, or the error to return. Short
    /// writes persist their prefix via `persist` before the crash.
    fn data_op(
        &self,
        path: &str,
        bytes: &[u8],
        persist: impl FnOnce(&[u8]) -> Result<(), FsError>,
    ) -> Result<Option<Vec<u8>>, FsError> {
        match self.draw() {
            None => Ok(None),
            Some(Fault::Crash) | Some(Fault::TornRename) => Err(self.crash(path)),
            Some(Fault::ShortWrite { keep }) => {
                let keep = keep.min(bytes.len());
                if keep > 0 {
                    persist(&bytes[..keep])?;
                }
                Err(self.crash(path))
            }
            Some(Fault::BitFlip { bit }) => {
                if bytes.is_empty() {
                    return Ok(None);
                }
                let mut flipped = bytes.to_vec();
                let bit = bit % (flipped.len() * 8);
                flipped[bit / 8] ^= 1 << (bit % 8);
                Ok(Some(flipped))
            }
            Some(Fault::NoSpace) => Err(FsError::NoSpace(path.to_string())),
        }
    }
}

impl StoreFs for FaultFs {
    fn read(&self, path: &str) -> Result<Vec<u8>, FsError> {
        self.check_alive(path)?;
        self.inner.read(path)
    }

    fn write(&self, path: &str, bytes: &[u8]) -> Result<(), FsError> {
        self.check_alive(path)?;
        match self.data_op(path, bytes, |prefix| self.inner.write(path, prefix))? {
            Some(flipped) => self.inner.write(path, &flipped),
            None => self.inner.write(path, bytes),
        }
    }

    fn append(&self, path: &str, bytes: &[u8]) -> Result<(), FsError> {
        self.check_alive(path)?;
        match self.data_op(path, bytes, |prefix| self.inner.append(path, prefix))? {
            Some(flipped) => self.inner.append(path, &flipped),
            None => self.inner.append(path, bytes),
        }
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), FsError> {
        self.check_alive(from)?;
        match self.draw() {
            None | Some(Fault::BitFlip { .. }) => self.inner.rename(from, to),
            Some(Fault::Crash) | Some(Fault::ShortWrite { .. }) => Err(self.crash(from)),
            Some(Fault::TornRename) => {
                // Source unlinked, destination never appears: the state a
                // crash between the unlink and the link of a non-atomic
                // rename leaves behind.
                let _ = self.inner.remove(from);
                Err(self.crash(from))
            }
            Some(Fault::NoSpace) => Err(FsError::NoSpace(from.to_string())),
        }
    }

    fn remove(&self, path: &str) -> Result<(), FsError> {
        self.check_alive(path)?;
        match self.draw() {
            None | Some(Fault::BitFlip { .. }) => self.inner.remove(path),
            Some(Fault::Crash) | Some(Fault::ShortWrite { .. }) | Some(Fault::TornRename) => {
                Err(self.crash(path))
            }
            Some(Fault::NoSpace) => Err(FsError::NoSpace(path.to_string())),
        }
    }

    fn list(&self) -> Result<Vec<String>, FsError> {
        self.check_alive("list")?;
        self.inner.list()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Arc<MemFs> {
        Arc::new(MemFs::new())
    }

    #[test]
    fn memfs_roundtrip_and_rename() {
        let fs = mem();
        fs.write("a", b"one").unwrap();
        fs.append("a", b"+two").unwrap();
        assert_eq!(fs.read("a").unwrap(), b"one+two");
        fs.rename("a", "b").unwrap();
        assert_eq!(fs.read("b").unwrap(), b"one+two");
        assert_eq!(fs.read("a").unwrap_err(), FsError::NotFound("a".into()));
        assert_eq!(fs.list().unwrap(), vec!["b".to_string()]);
        fs.remove("b").unwrap();
        assert!(fs.list().unwrap().is_empty());
    }

    #[test]
    fn faultfs_passes_through_when_unarmed() {
        let inner = mem();
        let fs = FaultFs::new(inner.clone());
        fs.write("f", b"payload").unwrap();
        fs.append("f", b"+more").unwrap();
        fs.rename("f", "g").unwrap();
        assert_eq!(inner.read("g").unwrap(), b"payload+more");
        assert_eq!(fs.ops(), 3);
        assert_eq!(fs.fired(), 0);
        assert!(!fs.is_crashed());
    }

    #[test]
    fn short_write_keeps_prefix_then_kills_everything() {
        let inner = mem();
        let fs = FaultFs::new(inner.clone());
        fs.write("a", b"full").unwrap(); // op 0
        fs.arm(1, Fault::ShortWrite { keep: 3 });
        let err = fs.write("b", b"abcdef").unwrap_err();
        assert!(matches!(err, FsError::Crashed(_)));
        // Dead wrapper: even reads fail until "restart".
        assert!(matches!(fs.read("a"), Err(FsError::Crashed(_))));
        assert!(matches!(fs.write("c", b"x"), Err(FsError::Crashed(_))));
        // The restart (inner) sees the prefix and everything older.
        assert_eq!(inner.read("a").unwrap(), b"full");
        assert_eq!(inner.read("b").unwrap(), b"abc");
        assert_eq!(fs.fired(), 1);
    }

    #[test]
    fn torn_rename_loses_both_names() {
        let inner = mem();
        let fs = FaultFs::new(inner.clone());
        fs.write("tmp", b"data").unwrap();
        fs.arm(1, Fault::TornRename);
        assert!(matches!(
            fs.rename("tmp", "final"),
            Err(FsError::Crashed(_))
        ));
        assert!(matches!(inner.read("tmp"), Err(FsError::NotFound(_))));
        assert!(matches!(inner.read("final"), Err(FsError::NotFound(_))));
    }

    #[test]
    fn bit_flip_is_silent_and_single_bit() {
        let inner = mem();
        let fs = FaultFs::new(inner.clone());
        fs.arm(0, Fault::BitFlip { bit: 9 });
        fs.write("f", &[0x00, 0x00, 0x00]).unwrap();
        assert!(!fs.is_crashed(), "bit flip must not stop execution");
        assert_eq!(inner.read("f").unwrap(), vec![0x00, 0x02, 0x00]);
        // Out-of-range bit indices wrap instead of panicking.
        fs.arm(1, Fault::BitFlip { bit: 24 });
        fs.write("g", &[0x00, 0x00, 0x00]).unwrap();
        assert_eq!(inner.read("g").unwrap(), vec![0x01, 0x00, 0x00]);
    }

    #[test]
    fn nospace_fails_cleanly_and_execution_continues() {
        let inner = mem();
        let fs = FaultFs::new(inner.clone());
        fs.arm(0, Fault::NoSpace);
        assert_eq!(
            fs.write("f", b"data").unwrap_err(),
            FsError::NoSpace("f".into())
        );
        assert!(matches!(inner.read("f"), Err(FsError::NotFound(_))));
        // Next op draws index 1: unarmed, passes through.
        fs.write("f", b"data").unwrap();
        assert_eq!(inner.read("f").unwrap(), b"data");
    }

    #[test]
    fn reads_do_not_consume_schedule_indices() {
        let fs = FaultFs::new(mem());
        fs.write("f", b"x").unwrap(); // op 0
        for _ in 0..5 {
            let _ = fs.read("f");
            let _ = fs.list();
        }
        fs.arm(1, Fault::NoSpace);
        assert!(matches!(fs.write("g", b"y"), Err(FsError::NoSpace(_))));
    }

    #[test]
    fn stdfs_roundtrip_in_temp_dir() {
        let root = std::env::temp_dir().join(format!("cpr_store_fs_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let fs = StdFs::open(&root).unwrap();
        fs.write("snap", b"alpha").unwrap();
        fs.append("snap", b"beta").unwrap();
        assert_eq!(fs.read("snap").unwrap(), b"alphabeta");
        fs.rename("snap", "snap2").unwrap();
        assert_eq!(fs.list().unwrap(), vec!["snap2".to_string()]);
        assert!(matches!(fs.read("snap"), Err(FsError::NotFound(_))));
        assert!(matches!(fs.read("../etc"), Err(FsError::Io(_))));
        fs.remove("snap2").unwrap();
        let _ = std::fs::remove_dir_all(&root);
    }
}
