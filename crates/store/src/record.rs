//! Checksummed, length-prefixed record framing.
//!
//! Every byte this crate persists — model snapshots, manifests, WAL
//! entries — is wrapped in one frame format:
//!
//! ```text
//! [magic "CPRR" u32 LE][payload_len u32 LE][payload][crc32 u32 LE]
//! ```
//!
//! The CRC-32 (IEEE polynomial, the zlib/ethernet one) is computed over
//! the payload alone and sits as a **footer** after it, so a torn write
//! — which truncates from the tail — can never leave a record whose
//! checksum still matches a shortened payload. A reader accepts a record
//! only when the magic, the declared length, *and* the footer all check
//! out; anything else is [`StoreError::Corrupt`].
//!
//! [`scan_stream`] is the WAL's replay rule made concrete: records are
//! consumed front-to-back and the scan **stops at the first invalid
//! frame** — a torn tail is where durable history ends, not an error.
//! Length fields are validated against the bytes actually present before
//! any allocation, so a corrupt length can neither panic nor balloon
//! memory.

use crate::StoreError;

/// Frame magic: `CPRR` little-endian.
pub const RECORD_MAGIC: u32 = 0x5252_5043;

/// Frame overhead in bytes (magic + length prefix + checksum footer).
pub const FRAME_OVERHEAD: usize = 12;

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven. The table is
/// built at compile time; no dependency needed.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Wrap `payload` in a checksummed frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
    out.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

fn u32_at(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().expect("bounds checked"))
}

/// Parse one frame starting at the head of `buf`. Returns the payload
/// and the total frame length consumed. Every validation failure —
/// short buffer, wrong magic, impossible length, checksum mismatch — is
/// [`StoreError::Corrupt`]; nothing panics and nothing allocates beyond
/// the payload bytes actually present.
pub fn read_frame(buf: &[u8]) -> Result<(&[u8], usize), StoreError> {
    if buf.len() < FRAME_OVERHEAD {
        return Err(StoreError::Corrupt(format!(
            "frame truncated: {} bytes < {FRAME_OVERHEAD} overhead",
            buf.len()
        )));
    }
    if u32_at(buf, 0) != RECORD_MAGIC {
        return Err(StoreError::Corrupt("bad record magic".into()));
    }
    let len = u32_at(buf, 4) as usize;
    // Validate the declared length against reality *before* touching the
    // payload: a corrupt length field must not index out of bounds.
    let total = len
        .checked_add(FRAME_OVERHEAD)
        .filter(|&t| t <= buf.len())
        .ok_or_else(|| {
            StoreError::Corrupt(format!(
                "frame declares {len} payload bytes, only {} present",
                buf.len().saturating_sub(FRAME_OVERHEAD)
            ))
        })?;
    let payload = &buf[8..8 + len];
    let stored = u32_at(buf, 8 + len);
    if crc32(payload) != stored {
        return Err(StoreError::Corrupt("record checksum mismatch".into()));
    }
    Ok((payload, total))
}

/// Parse exactly one frame spanning the whole buffer (snapshot records
/// and manifests are one frame per file; trailing bytes mean the file is
/// not what the manifest said it was).
pub fn read_single(buf: &[u8]) -> Result<&[u8], StoreError> {
    let (payload, consumed) = read_frame(buf)?;
    if consumed != buf.len() {
        return Err(StoreError::Corrupt(format!(
            "{} trailing bytes after record",
            buf.len() - consumed
        )));
    }
    Ok(payload)
}

/// Result of scanning a record stream (the WAL replay rule).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamScan {
    /// Payloads of the valid prefix, in order.
    pub records: Vec<Vec<u8>>,
    /// Bytes covered by the valid prefix — where a compaction rewrite
    /// would truncate to.
    pub valid_len: usize,
    /// Whether trailing bytes were discarded (torn tail or corruption).
    pub torn: bool,
}

/// Scan a stream of concatenated frames front-to-back, stopping at the
/// first invalid one. A torn tail is normal operation (the crash arrived
/// mid-append); everything after the first bad frame is *by definition*
/// not durable history, because records are appended strictly in order.
pub fn scan_stream(buf: &[u8]) -> StreamScan {
    let mut records = Vec::new();
    let mut at = 0usize;
    while at < buf.len() {
        match read_frame(&buf[at..]) {
            Ok((payload, consumed)) => {
                records.push(payload.to_vec());
                at += consumed;
            }
            Err(_) => {
                return StreamScan {
                    records,
                    valid_len: at,
                    torn: true,
                };
            }
        }
    }
    StreamScan {
        records,
        valid_len: at,
        torn: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn frame_roundtrips_and_rejects_any_single_byte_mutation() {
        let payload = b"model bytes \x00\xff payload";
        let framed = frame(payload);
        assert_eq!(read_single(&framed).unwrap(), payload);
        for i in 0..framed.len() {
            let mut bad = framed.clone();
            bad[i] ^= 0x01;
            // A flip in the payload fails the checksum; a flip in the
            // header fails magic/length; a flip in the footer fails the
            // comparison. Nothing passes.
            assert!(read_single(&bad).is_err(), "mutation at byte {i} accepted");
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let framed = frame(b"0123456789abcdef");
        for cut in 0..framed.len() {
            assert!(
                read_single(&framed[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn empty_payload_frames() {
        let framed = frame(b"");
        assert_eq!(framed.len(), FRAME_OVERHEAD);
        assert_eq!(read_single(&framed).unwrap(), b"");
    }

    #[test]
    fn huge_declared_length_errors_without_allocating() {
        let mut framed = frame(b"tiny");
        framed[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(read_single(&framed), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn stream_scan_stops_at_torn_tail() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&frame(b"first"));
        buf.extend_from_slice(&frame(b"second"));
        let full = buf.len();
        buf.extend_from_slice(&frame(b"third")[..7]); // torn mid-append
        let scan = scan_stream(&buf);
        assert_eq!(scan.records, vec![b"first".to_vec(), b"second".to_vec()]);
        assert_eq!(scan.valid_len, full);
        assert!(scan.torn);
        // A clean stream is not torn.
        let clean = scan_stream(&buf[..full]);
        assert!(!clean.torn);
        assert_eq!(clean.records.len(), 2);
    }

    #[test]
    fn stream_scan_corruption_truncates_history_there() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&frame(b"keep"));
        let keep_len = buf.len();
        buf.extend_from_slice(&frame(b"stomped"));
        buf.extend_from_slice(&frame(b"unreachable"));
        buf[keep_len + 9] ^= 0xFF; // corrupt the second record's payload
        let scan = scan_stream(&buf);
        assert_eq!(scan.records, vec![b"keep".to_vec()]);
        assert_eq!(scan.valid_len, keep_len);
        assert!(scan.torn);
    }
}
