//! Bounds-checked little-endian field codec for manifest and WAL
//! payloads. Every `take_*` validates remaining length first and returns
//! [`StoreError::Corrupt`] on shortfall — record payloads are
//! CRC-protected, so a decode failure means a framing bug or a checksum
//! collision, and either must surface as corruption, never a panic.

use crate::StoreError;

pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }

    pub fn is_empty(&self) -> bool {
        self.at >= self.buf.len()
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StoreError> {
        if self.buf.len() - self.at < n {
            return Err(StoreError::Corrupt(format!(
                "payload truncated reading {what}"
            )));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    pub fn take_u16(&mut self, what: &str) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(
            self.take(2, what)?.try_into().expect("len checked"),
        ))
    }

    pub fn take_u32(&mut self, what: &str) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("len checked"),
        ))
    }

    pub fn take_u64(&mut self, what: &str) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("len checked"),
        ))
    }

    pub fn take_f64(&mut self, what: &str) -> Result<f64, StoreError> {
        Ok(f64::from_le_bytes(
            self.take(8, what)?.try_into().expect("len checked"),
        ))
    }

    /// A `u16`-length-prefixed string.
    pub fn take_str(&mut self, what: &str) -> Result<String, StoreError> {
        let len = self.take_u16(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::Corrupt(format!("non-utf8 {what}")))
    }
}

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A `u16`-length-prefixed string. Panics on keys over 64 KiB — a
/// configuration error, not data corruption.
pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    let len = u16::try_from(s.len()).expect("store key over 64 KiB");
    put_u16(out, len);
    out.extend_from_slice(s.as_bytes());
}
