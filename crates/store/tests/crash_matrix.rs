//! The kill-point matrix: a fixed scenario of snapshot commits, WAL
//! appends, and a compaction is first run clean to count its mutating
//! filesystem operations, then re-run once per (operation index × fault
//! kind) with that exact operation faulted. After every single run, a
//! simulated restart (reopening the wrapped backend — the bytes a
//! rebooted process finds) must recover:
//!
//! * the snapshot fleet **exactly** as of the last commit the scenario
//!   observed succeeding — bitwise, never torn, never a new/old mix;
//! * a WAL whose replayed entries are exactly the batches bookkept as
//!   durable — or, under a *silent* fault (bit flip, which only a
//!   checksum can see), a subsequence of them (the log is cut at the
//!   first invalid frame; nothing is ever invented or reordered).
//!
//! Fault kinds cover the crash shapes a real filesystem can produce:
//! process death between any two operations (Crash), a torn write
//! persisting a prefix (ShortWrite), a non-atomic rename caught between
//! unlink and link (TornRename), silent single-bit media corruption
//! (BitFlip), and a full device (NoSpace), which must degrade, not kill.

use cpr_store::{Fault, FaultFs, FleetStore, MemFs};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Expected durable state, bookkept step by step: only steps the
/// scenario observed succeeding update it.
#[derive(Default)]
struct Expected {
    models: BTreeMap<String, Vec<u8>>,
    /// (key, seq, samples) in append order, minus compacted entries.
    wal: Vec<(String, u64, Vec<Vec<f64>>)>,
}

fn batch(tag: f64) -> Vec<Vec<f64>> {
    vec![vec![tag, tag + 0.5, tag * 2.0], vec![tag, tag, tag]]
}

/// One scripted run against `store`. Every step tolerates failure (a
/// dead process fails everything; a full disk fails one op) and records
/// into `exp` only what actually committed.
fn scenario(store: &FleetStore, exp: &mut Expected) {
    let persist = |exp: &mut Expected, key: &str, payload: &[u8]| {
        if store.snapshots().persist(key, payload).is_ok() {
            exp.models.insert(key.to_string(), payload.to_vec());
        }
    };
    let append = |exp: &mut Expected, key: &str, seq: u64, samples: Vec<Vec<f64>>| {
        if store.wal().append(key, seq, &samples).is_ok() {
            exp.wal.push((key.to_string(), seq, samples));
        }
    };

    persist(exp, "a", b"model-a generation one..");
    append(exp, "a", 0, batch(1.0));
    persist(exp, "b", b"model-b generation one, a little longer payload");
    append(exp, "a", 1, batch(2.0));
    append(exp, "b", 2, batch(3.0));
    persist(exp, "a", b"model-a generation two!!");
    // Model a's batches are now reflected in its persisted snapshot:
    // compact them out of the log.
    if store.wal().compact("a", &[0, 1]).is_ok() {
        exp.wal
            .retain(|(k, s, _)| !(k == "a" && [0, 1].contains(s)));
    }
    // Whole-fleet replacement: b is dropped, c appears.
    if store
        .snapshots()
        .commit_fleet(vec![
            ("a".to_string(), b"model-a generation three".to_vec()),
            (
                "c".to_string(),
                b"model-c appears in the fleet commit".to_vec(),
            ),
        ])
        .is_ok()
    {
        exp.models.clear();
        exp.models
            .insert("a".into(), b"model-a generation three".to_vec());
        exp.models
            .insert("c".into(), b"model-c appears in the fleet commit".to_vec());
    }
    append(exp, "c", 3, batch(4.0));
}

/// `sub` must appear inside `full` in order (silent corruption may only
/// cut or skip, never invent or reorder).
fn is_subsequence(
    sub: &[(String, u64, Vec<Vec<f64>>)],
    full: &[(String, u64, Vec<Vec<f64>>)],
) -> bool {
    let mut it = full.iter();
    sub.iter().all(|want| it.any(|have| have == want))
}

/// Run the scenario with `fault` armed at mutating-op `k`, restart, and
/// assert the recovery invariants.
fn run_killed(k: u64, fault: Fault) {
    let fs = FaultFs::new(Arc::new(MemFs::new()));
    fs.arm(k, fault);
    let mut exp = Expected::default();
    // Opening an empty store performs no mutating ops — safe pre-fault.
    let store = FleetStore::open(Arc::new(fs.clone())).unwrap();
    scenario(&store, &mut exp);
    assert_eq!(fs.fired(), 1, "armed fault at op {k} never fired");

    // Restart: only what reached the wrapped backend survives.
    let recovered = FleetStore::open(fs.inner()).expect("recovery must always open");
    let fleet = recovered
        .snapshots()
        .load()
        .expect("recovery must always load");
    let got: BTreeMap<String, Vec<u8>> = fleet.models.clone().into_iter().collect();
    assert_eq!(
        got, exp.models,
        "fleet after {fault:?} at op {k} must be exactly the last committed generation"
    );

    let replay = recovered
        .wal()
        .replay()
        .expect("replay must always succeed");
    let got_wal: Vec<(String, u64, Vec<Vec<f64>>)> = replay
        .entries
        .into_iter()
        .map(|e| (e.key, e.seq, e.samples))
        .collect();
    if matches!(fault, Fault::BitFlip { .. }) {
        assert!(
            is_subsequence(&got_wal, &exp.wal),
            "bit flip at op {k}: replayed WAL {got_wal:?} must be a subsequence of {:?}",
            exp.wal
        );
    } else {
        assert_eq!(
            got_wal, exp.wal,
            "WAL after {fault:?} at op {k} must replay exactly the durable batches"
        );
    }

    // Recovery is idempotent: a second restart sees the same world.
    let again = FleetStore::open(fs.inner()).unwrap();
    assert_eq!(again.snapshots().load().unwrap().models, fleet.models);
}

/// Clean-run op count — the matrix's index space. Also sanity-checks the
/// no-fault path end-state.
fn clean_ops() -> u64 {
    let fs = FaultFs::new(Arc::new(MemFs::new()));
    let store = FleetStore::open(Arc::new(fs.clone())).unwrap();
    let mut exp = Expected::default();
    scenario(&store, &mut exp);
    assert_eq!(fs.fired(), 0);
    let fleet = store.snapshots().load().unwrap();
    assert_eq!(
        fleet
            .models
            .iter()
            .map(|(k, _)| k.as_str())
            .collect::<Vec<_>>(),
        vec!["a", "c"],
        "clean scenario ends on the fleet commit"
    );
    assert_eq!(
        store.wal().replay().unwrap().entries.len(),
        2,
        "clean scenario ends with b:2 and c:3 in the log"
    );
    fs.ops()
}

#[test]
fn kill_point_matrix_recovers_last_durable_generation() {
    let n = clean_ops();
    assert!(
        n >= 20,
        "scenario too small to be a meaningful matrix: {n} ops"
    );
    let faults = [
        Fault::Crash,
        Fault::ShortWrite { keep: 7 },
        Fault::ShortWrite { keep: 20 },
        Fault::TornRename,
        Fault::BitFlip { bit: 13 },
        Fault::NoSpace,
    ];
    for k in 0..n {
        for fault in faults {
            run_killed(k, fault);
        }
    }
}

#[test]
fn double_fault_still_recovers_a_complete_generation() {
    // Beyond the single-fault matrix: a silent bit flip followed later by
    // a crash. The read-back verify turns the flip into a clean commit
    // failure, so recovery must still be a complete (possibly older)
    // generation — never a torn one. State bookkeeping is the same
    // success-observing scenario, so equality still holds exactly.
    let n = clean_ops();
    for flip_at in 0..n.saturating_sub(1) {
        let fs = FaultFs::new(Arc::new(MemFs::new()));
        fs.arm(flip_at, Fault::BitFlip { bit: 7 });
        fs.arm(flip_at + 1, Fault::Crash);
        let store = FleetStore::open(Arc::new(fs.clone())).unwrap();
        let mut exp = Expected::default();
        scenario(&store, &mut exp);
        let recovered = FleetStore::open(fs.inner()).unwrap();
        let got: BTreeMap<String, Vec<u8>> = recovered
            .snapshots()
            .load()
            .unwrap()
            .models
            .into_iter()
            .collect();
        assert_eq!(
            got,
            exp.models,
            "flip at {flip_at}, crash at {}",
            flip_at + 1
        );
    }
}
