//! Reference-model proptest for the fault injector itself. The test
//! harness is only as trustworthy as its fault filesystem, so `FaultFs`
//! is checked against plain `MemFs` over random mutating-op sequences:
//!
//! * unarmed, `FaultFs` is a transparent proxy — every result and the
//!   final byte-for-byte state match the reference;
//! * armed at op `k`, behavior is identical to the reference *before*
//!   `k`, the fault's documented partial effect lands exactly at `k`,
//!   the fault fires exactly once, and crash-shaped faults fail every
//!   later operation with `FsError::Crashed` while non-fatal ones
//!   (bit flip, no-space) let execution continue on the reference path.

use cpr_store::{Fault, FaultFs, FsError, MemFs, StoreFs};
use proptest::prelude::*;
use std::sync::Arc;

const NAMES: [&str; 3] = ["alpha", "beta", "gamma"];

/// A mutating operation drawn by proptest: (kind, name index, payload
/// byte, payload length). Rename targets `NAMES[(n + 1) % 3]`.
type Op = (u8, u8, u8, u8);

/// Per-op ok-ness plus the final (name, bytes) state of a run.
type RunOutcome = (Vec<Result<(), FsError>>, Vec<(String, Vec<u8>)>);

fn apply(fs: &dyn StoreFs, op: Op) -> Result<(), FsError> {
    let (kind, n, byte, len) = op;
    let name = NAMES[n as usize % 3];
    let dest = NAMES[(n as usize + 1) % 3];
    let payload = vec![byte; 1 + len as usize % 24];
    match kind % 4 {
        0 => fs.write(name, &payload),
        1 => fs.append(name, &payload),
        2 => fs.rename(name, dest),
        _ => fs.remove(name),
    }
}

fn dump(fs: &dyn StoreFs) -> Vec<(String, Vec<u8>)> {
    let mut names = fs.list().unwrap();
    names.sort();
    names
        .into_iter()
        .map(|n| {
            let bytes = fs.read(&n).unwrap();
            (n, bytes)
        })
        .collect()
}

/// Replay `ops` on a fresh reference `MemFs`, returning each result's
/// ok-ness and the final state.
fn reference(ops: &[Op]) -> RunOutcome {
    let mem = MemFs::new();
    let results = ops.iter().map(|&op| apply(&mem, op)).collect();
    (results, dump(&mem))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Unarmed FaultFs == MemFs, op for op and byte for byte.
    #[test]
    fn unarmed_faultfs_is_a_transparent_proxy(
        ops in proptest::collection::vec((0u8..8, 0u8..3, 0u8..=255u8, 0u8..=255u8), 0..40),
    ) {
        let (want_results, want_state) = reference(&ops);
        let fault = FaultFs::new(Arc::new(MemFs::new()));
        for (i, &op) in ops.iter().enumerate() {
            prop_assert_eq!(apply(&fault, op).is_ok(), want_results[i].is_ok(), "op {}", i);
        }
        prop_assert_eq!(fault.ops(), ops.len() as u64);
        prop_assert_eq!(fault.fired(), 0);
        prop_assert!(!fault.is_crashed());
        prop_assert_eq!(dump(&fault), want_state);
        prop_assert_eq!(dump(fault.inner().as_ref()), dump(&fault));
    }

    /// Armed at k: reference behavior before k, the documented partial
    /// effect at k, exactly one firing, and the documented continuation.
    #[test]
    fn armed_fault_fires_exactly_once_at_its_index(
        ops in proptest::collection::vec((0u8..8, 0u8..3, 0u8..=255u8, 1u8..24), 1..32),
        k_raw in 0usize..32,
        fault_kind in 0u8..5,
        keep in 0u8..12,
        bit in 0u32..=4_000_000_000u32,
    ) {
        let k = k_raw % ops.len();
        let fault = match fault_kind {
            0 => Fault::Crash,
            1 => Fault::ShortWrite { keep: keep as usize },
            2 => Fault::TornRename,
            3 => Fault::BitFlip { bit: bit as usize },
            _ => Fault::NoSpace,
        };

        // Reference state as of just before op k.
        let (_, state_before_k) = reference(&ops[..k]);
        // Reference results for the whole sequence (what a non-fatal
        // fault's continuation should match).
        let (ref_results, _) = reference(&ops);

        let fs = FaultFs::new(Arc::new(MemFs::new()));
        fs.arm(k as u64, fault);
        let mut results = Vec::new();
        for &op in &ops {
            results.push(apply(&fs, op));
        }
        prop_assert_eq!(fs.fired(), 1, "armed fault must fire exactly once");

        // Before k: indistinguishable from the reference.
        for i in 0..k {
            prop_assert_eq!(results[i].is_ok(), ref_results[i].is_ok(), "pre-fault op {}", i);
        }

        let (kind, n, byte, len) = ops[k];
        let name = NAMES[n as usize % 3];
        let payload_len = 1 + len as usize % 24;
        match fault {
            Fault::Crash => {
                // Nothing at k lands; everything from k on is Crashed.
                prop_assert_eq!(dump(fs.inner().as_ref()), state_before_k);
                for (i, r) in results.iter().enumerate().skip(k) {
                    prop_assert!(matches!(r, Err(FsError::Crashed(_))), "post-crash op {}", i);
                }
                prop_assert!(fs.is_crashed());
            }
            Fault::ShortWrite { keep } => {
                // A prefix of the payload lands for write/append; the
                // process then dies mid-write. keep == 0 means nothing
                // lands — prior content (write does not truncate first)
                // survives.
                prop_assert!(results[k].is_err());
                let state = dump(fs.inner().as_ref());
                let prior: Option<Vec<u8>> = state_before_k
                    .iter()
                    .find(|(f, _)| f == name)
                    .map(|(_, b)| b.clone());
                let kept = keep.min(payload_len);
                match kind % 4 {
                    0 => {
                        let got = state.iter().find(|(f, _)| f == name).map(|(_, b)| b.clone());
                        let want = if kept == 0 { prior } else { Some(vec![byte; kept]) };
                        prop_assert_eq!(got, want, "short write prefix");
                    }
                    1 => {
                        let got = state.iter().find(|(f, _)| f == name).map(|(_, b)| b.clone());
                        let mut want = prior.unwrap_or_default();
                        want.extend(vec![byte; kept]);
                        let want = if want.is_empty() { None } else { Some(want) };
                        prop_assert_eq!(got, want, "short append prefix");
                    }
                    // Rename/remove have no payload to tear; they die
                    // without effect.
                    _ => prop_assert_eq!(&state, &state_before_k),
                }
                for (i, r) in results.iter().enumerate().skip(k + 1) {
                    prop_assert!(matches!(r, Err(FsError::Crashed(_))), "post-crash op {}", i);
                }
                prop_assert!(fs.is_crashed());
            }
            Fault::TornRename => {
                let state = dump(fs.inner().as_ref());
                if kind % 4 == 2 {
                    let dest = NAMES[(n as usize + 1) % 3];
                    let src_existed = state_before_k.iter().any(|(f, _)| f == name);
                    // Source unlinked, new destination never linked; a
                    // pre-existing destination survives untouched.
                    prop_assert!(!state.iter().any(|(f, _)| f == name), "source must be gone");
                    let dest_before: Option<&Vec<u8>> =
                        state_before_k.iter().find(|(f, _)| f == dest).map(|(_, b)| b);
                    let dest_after: Option<&Vec<u8>> =
                        state.iter().find(|(f, _)| f == dest).map(|(_, b)| b);
                    if src_existed {
                        prop_assert_eq!(dest_after, dest_before, "old destination must survive");
                    }
                } else {
                    // Torn rename armed on a non-rename op degrades to a
                    // crash before the op.
                    prop_assert_eq!(&state, &state_before_k);
                }
                for (i, r) in results.iter().enumerate().skip(k + 1) {
                    prop_assert!(matches!(r, Err(FsError::Crashed(_))), "post-crash op {}", i);
                }
                prop_assert!(fs.is_crashed());
            }
            Fault::BitFlip { .. } => {
                // Silent: op k reports success iff the reference did, and
                // execution continues normally.
                prop_assert!(!fs.is_crashed());
                for (i, r) in results.iter().enumerate() {
                    prop_assert_eq!(r.is_ok(), ref_results[i].is_ok(), "bitflip is silent, op {}", i);
                }
                // Exactly one bit of divergence from the reference, and
                // only when op k had payload bytes to corrupt.
                let (_, ref_state) = reference(&ops);
                let got_state = dump(fs.inner().as_ref());
                let diff_bits: u32 = {
                    let flat = |s: &[(String, Vec<u8>)]| -> Vec<u8> {
                        s.iter().flat_map(|(f, b)| {
                            f.as_bytes().iter().chain(b.iter()).copied().collect::<Vec<u8>>()
                        }).collect()
                    };
                    let a = flat(&got_state);
                    let b = flat(&ref_state);
                    if a.len() != b.len() {
                        // A later op rewrote/removed the flipped file; the
                        // flip may have cascaded through renames only —
                        // sizes still match in that case, so unequal sizes
                        // can't happen with this op set.
                        u32::MAX
                    } else {
                        a.iter().zip(&b).map(|(x, y)| (x ^ y).count_ones()).sum()
                    }
                };
                prop_assert!(diff_bits <= 1, "at most one flipped bit, got {}", diff_bits);
            }
            Fault::NoSpace => {
                // Clean failure at k with nothing written, then normal
                // continuation (every op kind reports full-disk — even
                // rename/remove touch metadata blocks). The run is
                // therefore equivalent to one that skips op k entirely.
                prop_assert!(!fs.is_crashed());
                prop_assert!(matches!(&results[k], Err(FsError::NoSpace(_))));
                let mut skipped = ops.clone();
                skipped.remove(k);
                let (_, want_state) = reference(&skipped);
                prop_assert_eq!(dump(fs.inner().as_ref()), want_state);
            }
        }
    }
}
