//! The bounded ring-buffer event trace: structured lifecycle moments
//! with logical-clock sequence numbers.
//!
//! Counters say *how many*; the trace says *what happened, in order*.
//! Sequence numbers are assigned under the ring's lock, so they are
//! dense, strictly increasing, and agree with ring order — a reader that
//! polls `since(last_seen)` sees every retained event exactly once.
//! The ring is bounded: old events fall off the front, and a reader that
//! lagged past the capacity can detect the gap from the jump in `seq`.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

/// The lifecycle event catalog (see DESIGN.md "Observability").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A model hot-swap published a new plan (registry install or
    /// pipeline refit).
    Swap,
    /// The holdout quality gate refused a refit candidate.
    GateReject,
    /// A per-model circuit breaker tripped open.
    BreakerTrip,
    /// A breaker closed again (successful probe).
    BreakerClose,
    /// Load was shed (server admission/deadline, or pipeline queue).
    Shed,
    /// The telemetry WAL rotated oldest records away at its growth cap.
    WalRotate,
    /// A server began graceful drain.
    Drain,
}

impl EventKind {
    /// Stable wire name, as rendered on `/events` lines.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Swap => "swap",
            Self::GateReject => "gate_reject",
            Self::BreakerTrip => "breaker_trip",
            Self::BreakerClose => "breaker_close",
            Self::Shed => "shed",
            Self::WalRotate => "wal_rotate",
            Self::Drain => "drain",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Logical clock: dense, strictly increasing, starts at 1.
    pub seq: u64,
    pub kind: EventKind,
    /// Free-form context (typically the model id or a reason).
    pub detail: String,
}

impl Event {
    /// The `/events` wire line: `<seq> <kind> <detail>`.
    pub fn render_line(&self) -> String {
        format!("{} {} {}\n", self.seq, self.kind, self.detail)
    }
}

struct TraceInner {
    next_seq: u64,
    ring: VecDeque<Event>,
}

/// The bounded trace. All methods take one short mutex; recording is
/// reserved for *rare* moments (swaps, trips, rotations, sheds), never
/// per-query hot paths.
pub struct EventTrace {
    cap: usize,
    inner: Mutex<TraceInner>,
}

impl EventTrace {
    pub fn new(capacity: usize) -> Self {
        Self {
            cap: capacity.max(1),
            inner: Mutex::new(TraceInner {
                next_seq: 0,
                ring: VecDeque::new(),
            }),
        }
    }

    /// Retained-event capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Record an event; returns its sequence number.
    pub fn record(&self, kind: EventKind, detail: impl Into<String>) -> u64 {
        let mut t = self.inner.lock().expect("event trace poisoned");
        t.next_seq += 1;
        let seq = t.next_seq;
        if t.ring.len() >= self.cap {
            t.ring.pop_front();
        }
        t.ring.push_back(Event {
            seq,
            kind,
            detail: detail.into(),
        });
        seq
    }

    /// Retained events with `seq > since`, oldest first.
    pub fn since(&self, since: u64) -> Vec<Event> {
        let t = self.inner.lock().expect("event trace poisoned");
        t.ring.iter().filter(|e| e.seq > since).cloned().collect()
    }

    /// The last assigned sequence number (0 before any event).
    pub fn last_seq(&self) -> u64 {
        self.inner.lock().expect("event trace poisoned").next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_is_dense_and_since_filters() {
        let t = EventTrace::new(16);
        assert_eq!(t.last_seq(), 0);
        assert_eq!(t.record(EventKind::Swap, "a"), 1);
        assert_eq!(t.record(EventKind::Shed, "b"), 2);
        assert_eq!(t.record(EventKind::Drain, ""), 3);
        let all = t.since(0);
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].kind, EventKind::Swap);
        let tail = t.since(2);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].seq, 3);
        assert!(t.since(3).is_empty());
        assert_eq!(all[1].render_line(), "2 shed b\n");
    }

    #[test]
    fn ring_is_bounded_and_gaps_are_visible() {
        let t = EventTrace::new(3);
        for i in 0..10 {
            t.record(EventKind::Swap, format!("m{i}"));
        }
        let kept = t.since(0);
        assert_eq!(kept.len(), 3);
        // Oldest retained seq jumped: the lag is detectable.
        assert_eq!(kept[0].seq, 8);
        assert_eq!(t.last_seq(), 10);
    }
}
