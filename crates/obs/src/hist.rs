//! The fixed-boundary log₂-bucket latency histogram.
//!
//! Boundaries are powers of two: bucket `i` (for `i < HIST_BUCKETS - 1`)
//! counts values `v` with `2^(i-1) < v ≤ 2^i` (bucket 0 takes `v ≤ 1`),
//! and the last bucket is the `+Inf` overflow. Values are dimensionless
//! `u64`s; the fleet records **microseconds**, which the fixed layout
//! covers from sub-µs to `2^26` µs ≈ 67 s before overflowing — wider
//! than any deadline the serving stack accepts.
//!
//! A bump is two relaxed `fetch_add`s (bucket + sum). A snapshot reads
//! the buckets and derives its count from them, so the snapshot's CDF is
//! monotone and every counted value sits in exactly one bucket, whatever
//! writers race the read. (`sum` is read separately and may be off by
//! in-flight records; quantiles never use it.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Bucket count: 27 finite power-of-two boundaries (`le = 1, 2, …, 2^26`)
/// plus the `+Inf` overflow bucket.
pub const HIST_BUCKETS: usize = 28;

/// Index of the bucket a value lands in: the smallest `i` with
/// `v ≤ 2^i`, clamped into the overflow bucket.
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        ((64 - (v - 1).leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Upper boundary of bucket `i` (`f64::INFINITY` for the overflow
/// bucket) — the value a quantile read reports for that bucket.
pub fn bucket_bound(i: usize) -> f64 {
    if i >= HIST_BUCKETS - 1 {
        f64::INFINITY
    } else {
        (1u64 << i) as f64
    }
}

struct HistCore {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

/// A shared handle to one histogram. Cloning shares the underlying
/// buckets; recording is lock-free.
#[derive(Clone)]
pub struct Histogram(Arc<HistCore>);

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram. Registry-owned histograms come from
    /// [`MetricsRegistry::histogram`](crate::MetricsRegistry::histogram);
    /// a standalone one is useful for local measurement and tests.
    pub fn new() -> Self {
        Self(Arc::new(HistCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }))
    }

    /// Two handles over the same buckets?
    pub fn same(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// Record one value (the fleet records microseconds).
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a duration as whole microseconds (saturating).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// A consistent point-in-time read (count derived from the buckets).
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed)),
            sum: self.0.sum.load(Ordering::Relaxed),
        }
    }

    /// Shorthand: the `q`-quantile of a fresh snapshot, as the upper
    /// boundary (in recorded units) of the bucket holding that rank.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

/// An owned point-in-time histogram state: per-bucket counts plus the
/// running value sum. Merging is elementwise addition, so it is exactly
/// associative and commutative — shard-local histograms can be combined
/// in any order with one result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Count per bucket (see [`bucket_index`] for the layout).
    pub buckets: [u64; HIST_BUCKETS],
    /// Sum of recorded values (advisory: racy against `buckets` by
    /// whatever records were in flight during the read).
    pub sum: u64,
}

impl HistSnapshot {
    /// An empty snapshot (the merge identity).
    pub fn empty() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            sum: 0,
        }
    }

    /// Total recorded values — by construction `Σ buckets`, so the CDF
    /// below is internally consistent even against racing writers.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The `q`-quantile (`0 < q ≤ 1`), reported as the upper boundary of
    /// the bucket containing rank `⌈q·count⌉`: an upper bound on the
    /// true quantile, at most one power of two above it. `0` when empty;
    /// `u64::MAX` when the rank falls in the overflow bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i >= HIST_BUCKETS - 1 {
                    u64::MAX
                } else {
                    1u64 << i
                };
            }
        }
        u64::MAX // unreachable: seen reaches count
    }

    /// Elementwise merge (exact, associative, commutative).
    pub fn merge(&self, other: &Self) -> Self {
        Self {
            buckets: std::array::from_fn(|i| self.buckets[i] + other.buckets[i]),
            sum: self.sum + other.sum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 26), 26);
        assert_eq!(bucket_index((1 << 26) + 1), HIST_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_bound(0), 1.0);
        assert_eq!(bucket_bound(10), 1024.0);
        assert!(bucket_bound(HIST_BUCKETS - 1).is_infinite());
    }

    #[test]
    fn every_value_is_in_its_bucket_bounds() {
        for v in [0u64, 1, 2, 3, 7, 8, 9, 1000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!((v as f64) <= bucket_bound(i), "v={v} i={i}");
            if i > 0 {
                assert!((v as f64) > bucket_bound(i - 1), "v={v} i={i}");
            }
        }
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let h = Histogram::new();
        for v in [1u64, 1, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum, 1105);
        assert_eq!(s.quantile(0.2), 1); // rank 1 → le=1
        assert_eq!(s.quantile(0.5), 4); // rank 3 is value 3 → le=4
        assert_eq!(s.quantile(1.0), 1024); // rank 5 is 1000 → le=1024
        assert_eq!(HistSnapshot::empty().quantile(0.5), 0);
    }

    #[test]
    fn overflow_quantile_is_saturated() {
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }
}
