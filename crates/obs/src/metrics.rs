//! The named-metric registry: counters, gauges, histograms, and the
//! Prometheus text renderer.
//!
//! Registration (`counter`/`gauge`/`histogram`) takes a short mutex and
//! is idempotent by name: every caller asking for the same name gets a
//! handle to the same underlying cells, which is exactly how four
//! serving layers end up reporting into one registry. Handles are cheap
//! clones; bumping them never touches the registry lock again.
//!
//! Naming scheme (see DESIGN.md "Observability"):
//! `cpr_<layer>_<what>[_<unit>]`, with `_total` for counters and `_us`
//! for microsecond histograms — e.g. `cpr_server_received_total`,
//! `cpr_registry_serve_us`.

use crate::hist::{Histogram, HIST_BUCKETS};
use crate::trace::EventTrace;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotone counter handle (one relaxed `fetch_add` per bump).
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    fn new() -> Self {
        Self(Arc::new(AtomicU64::new(0)))
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a settable signed level (queue depths, in-flight).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    fn new() -> Self {
        Self(Arc::new(AtomicI64::new(0)))
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Self::Counter(_) => "counter",
            Self::Gauge(_) => "gauge",
            Self::Histogram(_) => "histogram",
        }
    }
}

/// The shared metric hub: a sorted name → metric map plus the lifecycle
/// [`EventTrace`]. One instance per serving stack — `ModelRegistry`
/// owns (or is handed) one, and the pipeline, store, and server all
/// register into it. See the crate docs for the consistency contract.
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
    trace: EventTrace,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A registry with the default event-trace capacity (1024).
    pub fn new() -> Self {
        Self::with_event_capacity(1024)
    }

    /// A registry retaining at most `capacity` trace events.
    pub fn with_event_capacity(capacity: usize) -> Self {
        Self {
            metrics: Mutex::new(BTreeMap::new()),
            trace: EventTrace::new(capacity),
        }
    }

    /// The lifecycle event trace.
    pub fn events(&self) -> &EventTrace {
        &self.trace
    }

    /// Get-or-create the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind — that
    /// is a wiring bug, not a runtime condition.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.lock().expect("metrics poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name} is a {}, not a counter", other.kind()),
        }
    }

    /// Get-or-create the gauge `name` (panics on a kind mismatch).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.lock().expect("metrics poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name} is a {}, not a gauge", other.kind()),
        }
    }

    /// Get-or-create the histogram `name` (panics on a kind mismatch).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.lock().expect("metrics poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name} is a {}, not a histogram", other.kind()),
        }
    }

    /// The current value of a registered counter, if any — what tests
    /// use to cross-check exported totals against stats structs.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.metrics.lock().expect("metrics poisoned").get(name) {
            Some(Metric::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// The current value of a registered gauge, if any.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        match self.metrics.lock().expect("metrics poisoned").get(name) {
            Some(Metric::Gauge(g)) => Some(g.get()),
            _ => None,
        }
    }

    /// A snapshot of a registered histogram, if any.
    pub fn histogram_snapshot(&self, name: &str) -> Option<crate::HistSnapshot> {
        match self.metrics.lock().expect("metrics poisoned").get(name) {
            Some(Metric::Histogram(h)) => Some(h.snapshot()),
            _ => None,
        }
    }

    /// Render every registered metric as Prometheus text exposition
    /// (format version 0.0.4): `# TYPE` per family; histograms as
    /// cumulative `_bucket{le="..."}` series plus `_sum`/`_count`.
    /// Deterministic: names render in sorted order.
    pub fn render(&self) -> String {
        let m = self.metrics.lock().expect("metrics poisoned");
        let mut out = String::with_capacity(m.len() * 64);
        for (name, metric) in m.iter() {
            let _ = writeln!(out, "# TYPE {name} {}", metric.kind());
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut cum = 0u64;
                    for (i, &n) in snap.buckets.iter().enumerate() {
                        cum += n;
                        if i == HIST_BUCKETS - 1 {
                            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
                        } else {
                            let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", 1u64 << i);
                        }
                    }
                    let _ = writeln!(out, "{name}_sum {}", snap.sum);
                    let _ = writeln!(out, "{name}_count {cum}");
                }
            }
        }
        out
    }
}

// One hub shared across every serving thread.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MetricsRegistry>();
    assert_send_sync::<Counter>();
    assert_send_sync::<Gauge>();
    assert_send_sync::<Histogram>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let obs = MetricsRegistry::new();
        let a = obs.counter("cpr_x_total");
        let b = obs.counter("cpr_x_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(obs.counter_value("cpr_x_total"), Some(3));
        let h1 = obs.histogram("cpr_x_us");
        let h2 = obs.histogram("cpr_x_us");
        assert!(h1.same(&h2));
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_is_a_wiring_bug() {
        let obs = MetricsRegistry::new();
        obs.counter("cpr_x_total");
        obs.gauge("cpr_x_total");
    }

    #[test]
    fn render_is_sorted_and_cumulative() {
        let obs = MetricsRegistry::new();
        obs.counter("cpr_b_total").add(7);
        obs.gauge("cpr_c_depth").set(-2);
        let h = obs.histogram("cpr_a_us");
        h.record(1);
        h.record(3);
        h.record(1 << 30); // overflow bucket
        let text = obs.render();
        // Sorted: histogram a before counter b before gauge c.
        let (pa, pb, pc) = (
            text.find("# TYPE cpr_a_us histogram").unwrap(),
            text.find("# TYPE cpr_b_total counter").unwrap(),
            text.find("# TYPE cpr_c_depth gauge").unwrap(),
        );
        assert!(pa < pb && pb < pc);
        assert!(text.contains("cpr_b_total 7\n"));
        assert!(text.contains("cpr_c_depth -2\n"));
        // Cumulative buckets: le=1 has 1, le=4 has 2, +Inf has all 3.
        assert!(text.contains("cpr_a_us_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("cpr_a_us_bucket{le=\"4\"} 2\n"));
        assert!(text.contains("cpr_a_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("cpr_a_us_count 3\n"));
        // Two scrapes of the same state are byte-identical.
        assert_eq!(text, obs.render());
    }
}
