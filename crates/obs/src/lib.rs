//! # cpr_obs — the fleet's shared observability substrate
//!
//! Every serving layer (`cpr_registry`, its refit pipeline, `cpr_store`,
//! `cpr_server`) reports into **one** [`MetricsRegistry`]; external
//! tooling reads it back as Prometheus text exposition through the
//! server's `GET /metrics` endpoint, or in-process via the typed
//! snapshot accessors. The design constraints, in rank order:
//!
//! 1. **Cheap on the hot path.** A [`Counter`] bump is one relaxed
//!    `fetch_add`; a [`Histogram`] record is two. No locks, no
//!    allocation, no formatting until somebody actually scrapes.
//! 2. **Snapshot-consistent.** A histogram snapshot derives its count
//!    from its bucket sums, so the CDF it exposes is monotone and
//!    internally consistent whatever writers race it. Whole-registry
//!    consistency (the server's accounting identity at every scrape) is
//!    the *caller's* job: bump related counters under one lock and hold
//!    that lock while rendering.
//! 3. **Deterministic.** Counters are exact totals — under
//!    `CPR_NUM_THREADS` ∈ {1, N} a deterministic workload exports the
//!    same numbers. Rendering iterates a sorted map, so two scrapes of
//!    the same state are byte-identical.
//! 4. **Zero dependencies.** The crate sits below every serving layer
//!    and the vendored shims alike.
//!
//! Lifecycle events that are *about moments*, not totals — swaps,
//! gate rejections, breaker trips, sheds, WAL rotations, drain — go to
//! the bounded ring-buffer [`EventTrace`] with logical-clock sequence
//! numbers (`GET /events?since=<seq>` over the wire).
//!
//! ```
//! use cpr_obs::{EventKind, MetricsRegistry};
//!
//! let obs = MetricsRegistry::new();
//! let served = obs.counter("cpr_demo_served_total");
//! let latency = obs.histogram("cpr_demo_latency_us");
//! served.inc();
//! latency.record(180); // µs
//! obs.events().record(EventKind::Swap, "gemm/frontier/time");
//!
//! let text = obs.render();
//! assert!(text.contains("cpr_demo_served_total 1"));
//! assert!(text.contains("cpr_demo_latency_us_bucket{le=\"256\"} 1"));
//! assert_eq!(obs.events().since(0).len(), 1);
//! ```

mod hist;
mod metrics;
mod trace;

pub use hist::{bucket_bound, bucket_index, HistSnapshot, Histogram, HIST_BUCKETS};
pub use metrics::{Counter, Gauge, MetricsRegistry};
pub use trace::{Event, EventKind, EventTrace};
