//! Property tests for the log₂-bucket histogram against a
//! sorted-vector reference model, plus a writer-race test pinning
//! exact totals.
//!
//! The reference model is the obvious thing the histogram approximates:
//! keep every recorded value, sort, answer quantiles by rank. The
//! histogram's contract is then exact, not fuzzy — its `q`-quantile is
//! the **bucket upper bound** of the reference's rank-`⌈q·n⌉` value,
//! its CDF is monotone, and merging shard snapshots in any grouping
//! gives one result.

use cpr_obs::{bucket_bound, bucket_index, HistSnapshot, Histogram, HIST_BUCKETS};
use proptest::prelude::*;

/// The sorted-vector reference: rank-based quantile over raw values.
fn reference_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// What the histogram must report for a raw value: its bucket's upper
/// bound (`u64::MAX` for the overflow bucket).
fn bucketized(v: u64) -> u64 {
    let i = bucket_index(v);
    if i >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << i
    }
}

fn snapshot_of(values: &[u64]) -> HistSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn quantile_matches_the_reference_model_exactly(
        mut values in proptest::collection::vec(0u64..1 << 30, 1..200),
        q in 0.01..1.0f64,
    ) {
        let snap = snapshot_of(&values);
        values.sort_unstable();
        prop_assert_eq!(snap.count(), values.len() as u64);
        // Same rank arithmetic, so the histogram answer IS the
        // reference answer pushed to its bucket's upper bound.
        prop_assert_eq!(
            snap.quantile(q),
            bucketized(reference_quantile(&values, q)),
            "q={} values={:?}", q, values
        );
    }

    #[test]
    fn quantile_upper_bounds_the_reference_within_one_octave(
        mut values in proptest::collection::vec(0u64..1 << 26, 1..100),
        q in 0.01..1.0f64,
    ) {
        let snap = snapshot_of(&values);
        values.sort_unstable();
        let truth = reference_quantile(&values, q);
        let reported = snap.quantile(q);
        prop_assert!(reported >= truth, "reported {} < true {}", reported, truth);
        // At most one power of two above the true quantile.
        prop_assert!(reported <= truth.max(1).saturating_mul(2));
    }

    #[test]
    fn cdf_is_monotone_and_quantiles_are_nondecreasing_in_q(
        values in proptest::collection::vec(0u64..u64::MAX, 0..100),
    ) {
        let snap = snapshot_of(&values);
        // Cumulative bucket counts never decrease and end at count().
        let mut cum = 0u64;
        for &b in &snap.buckets {
            cum += b; // would overflow-panic on a non-monotone CDF
        }
        prop_assert_eq!(cum, snap.count());
        if !values.is_empty() {
            let qs = [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
            for w in qs.windows(2) {
                prop_assert!(
                    snap.quantile(w[0]) <= snap.quantile(w[1]),
                    "quantile not monotone between q={} and q={}", w[0], w[1]
                );
            }
        }
    }

    #[test]
    fn merge_is_associative_commutative_and_lossless(
        a in proptest::collection::vec(0u64..1 << 28, 0..60),
        b in proptest::collection::vec(0u64..1 << 28, 0..60),
        c in proptest::collection::vec(0u64..1 << 28, 0..60),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        // Associativity and commutativity are exact (elementwise adds).
        prop_assert_eq!(sa.merge(&sb).merge(&sc), sa.merge(&sb.merge(&sc)));
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
        prop_assert_eq!(sa.merge(&HistSnapshot::empty()), sa.clone());
        // Merging shard snapshots equals recording everything into one.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(sa.merge(&sb).merge(&sc), snapshot_of(&all));
    }

    #[test]
    fn every_value_lands_in_exactly_one_bucket(v in 0u64..u64::MAX) {
        let i = bucket_index(v);
        prop_assert!(i < HIST_BUCKETS);
        prop_assert!((v as f64) <= bucket_bound(i));
        if i > 0 {
            prop_assert!((v as f64) > bucket_bound(i - 1));
        }
    }
}

/// N writer threads, each recording a known value mix; after joining,
/// the totals are exact — no bump is lost, sum included (`sum` is only
/// racy against *in-flight* writers, not settled ones).
#[test]
fn concurrent_writers_lose_nothing() {
    let threads: usize = std::env::var("CPR_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let per_thread = 10_000u64;
    let h = Histogram::new();
    std::thread::scope(|s| {
        for t in 0..threads {
            let h = h.clone();
            s.spawn(move || {
                for i in 0..per_thread {
                    // A spread of buckets, deterministic per thread.
                    h.record((t as u64 + 1) * (i % 1000));
                }
            });
        }
    });
    let snap = h.snapshot();
    assert_eq!(snap.count(), threads as u64 * per_thread);
    let expect_sum: u64 = (0..threads as u64)
        .map(|t| (0..per_thread).map(|i| (t + 1) * (i % 1000)).sum::<u64>())
        .sum();
    assert_eq!(snap.sum, expect_sum);
    // And the per-bucket counts match a single-threaded replay.
    let replay = Histogram::new();
    for t in 0..threads as u64 {
        for i in 0..per_thread {
            replay.record((t + 1) * (i % 1000));
        }
    }
    assert_eq!(snap, replay.snapshot());
}
