//! Discretization of one parameter onto one tensor mode (paper §5.1).
//!
//! A numerical parameter's range `[X_0, X_I]` is split into `I` sub-intervals
//! with uniform or logarithmic spacing. Tensor index `i` along this mode is
//! associated with the *mid-point* `M_i` of sub-interval `[X_i, X_{i+1}]`;
//! for logarithmic spacing the paper uses the geometric mean, rounded up to
//! an integer for integer parameters (`M = ⌈exp((log X_i + log X_{i+1})/2)⌉`).

use crate::param::{ParamSpec, Spacing};

/// One discretized tensor mode.
#[derive(Debug, Clone)]
pub struct Axis {
    spec: ParamSpec,
    /// Sub-interval boundaries `X_0 .. X_I` (length `cells + 1`); for
    /// categorical parameters this is empty.
    boundaries: Vec<f64>,
    /// Cell mid-points `M_0 .. M_{I-1}` (length `cells`); for categorical
    /// parameters `M_i = i`.
    midpoints: Vec<f64>,
}

impl Axis {
    /// Discretize `spec` into `cells` sub-intervals. For categorical
    /// parameters `cells` is ignored (cardinality wins).
    pub fn new(spec: &ParamSpec, cells: usize) -> Self {
        match spec {
            ParamSpec::Categorical { cardinality, .. } => {
                let midpoints = (0..*cardinality).map(|i| i as f64).collect();
                Self {
                    spec: spec.clone(),
                    boundaries: Vec::new(),
                    midpoints,
                }
            }
            ParamSpec::Numerical {
                lo,
                hi,
                spacing,
                integer,
                ..
            } => {
                assert!(cells >= 1, "Axis: need at least one cell");
                // Integer axes cannot usefully have more cells than distinct
                // integer values: extra cells would get duplicate midpoints
                // and break the binning/interpolation correspondence.
                let cells = if *integer {
                    let span = (hi.floor() - lo.ceil()) as usize + 1;
                    cells.min(span.max(1))
                } else {
                    cells
                };
                let boundaries: Vec<f64> = match spacing {
                    Spacing::Uniform => (0..=cells)
                        .map(|i| lo + (hi - lo) * i as f64 / cells as f64)
                        .collect(),
                    Spacing::Logarithmic => {
                        let (l0, l1) = (lo.ln(), hi.ln());
                        (0..=cells)
                            .map(|i| (l0 + (l1 - l0) * i as f64 / cells as f64).exp())
                            .collect()
                    }
                };
                let mut midpoints: Vec<f64> = boundaries
                    .windows(2)
                    .map(|w| {
                        let m = match spacing {
                            Spacing::Uniform => 0.5 * (w[0] + w[1]),
                            Spacing::Logarithmic => ((w[0].ln() + w[1].ln()) / 2.0).exp(),
                        };
                        if *integer {
                            // Paper's ⌈geometric-mean⌉ rule, clamped into the
                            // cell so grid-point and cell stay associated.
                            m.ceil().clamp(w[0].ceil(), w[1].floor().max(w[0].ceil()))
                        } else {
                            m
                        }
                    })
                    .collect();
                if *integer {
                    // Deduplicate: nudge repeated integer midpoints upward
                    // within their cell where possible.
                    for i in 1..midpoints.len() {
                        if midpoints[i] <= midpoints[i - 1] {
                            let cap = boundaries[i + 1].floor();
                            midpoints[i] = (midpoints[i - 1] + 1.0).min(cap.max(midpoints[i]));
                        }
                    }
                }
                Self {
                    spec: spec.clone(),
                    boundaries,
                    midpoints,
                }
            }
        }
    }

    /// The parameter this axis discretizes.
    pub fn spec(&self) -> &ParamSpec {
        &self.spec
    }

    /// Number of tensor indices along this mode.
    pub fn len(&self) -> usize {
        self.midpoints.len()
    }

    /// True when the axis has a single index.
    pub fn is_empty(&self) -> bool {
        self.midpoints.is_empty()
    }

    /// Sub-interval boundaries (empty for categorical).
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// Cell mid-points `M_i`.
    pub fn midpoints(&self) -> &[f64] {
        &self.midpoints
    }

    /// Tensor index of the cell containing `x` (clamped to the range).
    pub fn cell_of(&self, x: f64) -> usize {
        match &self.spec {
            ParamSpec::Categorical { cardinality, .. } => {
                (x.round().max(0.0) as usize).min(cardinality - 1)
            }
            ParamSpec::Numerical { .. } => {
                let n = self.len();
                // Binary search over boundaries: find i with b[i] <= x < b[i+1].
                match self
                    .boundaries
                    .binary_search_by(|b| b.partial_cmp(&x).expect("NaN in axis lookup"))
                {
                    Ok(i) => i.min(n - 1),
                    Err(ins) => ins.saturating_sub(1).min(n - 1),
                }
            }
        }
    }

    /// Interpolation stencil along this mode for value `x` (Eq. 5).
    ///
    /// Returns `(i0, i1, w1)`: the prediction uses `(1 - w1) * t[i0] + w1 *
    /// t[i1]`. For categorical parameters (or single-cell axes) this is a
    /// point stencil. Values beyond the first/last mid-point use the same
    /// two-point form with `w1` outside `[0, 1]`, which is exactly linear
    /// extrapolation "along the j'th mode using the corresponding values"
    /// (paper §5.1).
    pub fn stencil(&self, x: f64) -> (usize, usize, f64) {
        let n = self.len();
        if n == 1 || self.spec.is_categorical() {
            let i = self.cell_of(x);
            return (i, i, 0.0);
        }
        let h = |v: f64| self.spec.h(v);
        let hx = h(x);
        // Locate the midpoint bracket [M_i, M_{i+1}) containing x; clamp to
        // the extreme bracket outside the midpoint range.
        let mut i = match self
            .midpoints
            .binary_search_by(|m| m.partial_cmp(&x).expect("NaN in axis stencil"))
        {
            Ok(i) => i,
            Err(ins) => ins.saturating_sub(1),
        };
        i = i.min(n - 2);
        let (m0, m1) = (self.midpoints[i], self.midpoints[i + 1]);
        let denom = h(m1) - h(m0);
        let w1 = if denom.abs() < f64::EPSILON {
            0.0
        } else {
            (hx - h(m0)) / denom
        };
        (i, i + 1, w1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamSpec;

    #[test]
    fn uniform_boundaries_and_midpoints() {
        let a = Axis::new(&ParamSpec::linear("x", 0.0, 10.0), 5);
        assert_eq!(a.len(), 5);
        assert_eq!(a.boundaries(), &[0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
        assert_eq!(a.midpoints(), &[1.0, 3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn log_boundaries_are_geometric() {
        let a = Axis::new(&ParamSpec::log("x", 1.0, 16.0), 4);
        let b = a.boundaries();
        for w in b.windows(2) {
            assert!((w[1] / w[0] - 2.0).abs() < 1e-12, "ratio {}", w[1] / w[0]);
        }
        // Midpoints are geometric means.
        assert!((a.midpoints()[0] - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn integer_midpoints_are_ceiled() {
        let a = Axis::new(&ParamSpec::log_int("m", 32.0, 4096.0), 7);
        for &m in a.midpoints() {
            assert_eq!(m, m.ceil());
        }
    }

    #[test]
    fn cell_lookup_uniform() {
        let a = Axis::new(&ParamSpec::linear("x", 0.0, 10.0), 5);
        assert_eq!(a.cell_of(0.0), 0);
        assert_eq!(a.cell_of(1.99), 0);
        assert_eq!(a.cell_of(2.0), 1);
        assert_eq!(a.cell_of(9.99), 4);
        assert_eq!(a.cell_of(10.0), 4); // clamped top boundary
        assert_eq!(a.cell_of(-5.0), 0); // clamped below
        assert_eq!(a.cell_of(50.0), 4); // clamped above
    }

    #[test]
    fn cell_lookup_log() {
        let a = Axis::new(&ParamSpec::log("x", 1.0, 256.0), 8);
        assert_eq!(a.cell_of(1.0), 0);
        assert_eq!(a.cell_of(3.0), 1); // [2,4)
        assert_eq!(a.cell_of(255.0), 7);
    }

    #[test]
    fn categorical_axis() {
        let a = Axis::new(&ParamSpec::categorical("solver", 3), 99);
        assert_eq!(a.len(), 3);
        assert_eq!(a.cell_of(1.2), 1);
        assert_eq!(a.cell_of(7.0), 2); // clamped
        let (i0, i1, w) = a.stencil(2.0);
        assert_eq!((i0, i1, w), (2, 2, 0.0));
    }

    #[test]
    fn stencil_interpolates_between_midpoints() {
        let a = Axis::new(&ParamSpec::linear("x", 0.0, 10.0), 5);
        // x = 4.0 lies between midpoints 3 and 5: w1 = 0.5.
        let (i0, i1, w1) = a.stencil(4.0);
        assert_eq!((i0, i1), (1, 2));
        assert!((w1 - 0.5).abs() < 1e-12);
        // Exactly on a midpoint: weight 0 on the right neighbour.
        let (j0, _, w) = a.stencil(3.0);
        assert_eq!(j0, 1);
        assert!(w.abs() < 1e-12);
    }

    #[test]
    fn stencil_extrapolates_beyond_edge_midpoints() {
        let a = Axis::new(&ParamSpec::linear("x", 0.0, 10.0), 5);
        // Below the first midpoint (1.0): linear extrapolation, w1 < 0.
        let (i0, i1, w1) = a.stencil(0.0);
        assert_eq!((i0, i1), (0, 1));
        assert!((w1 + 0.5).abs() < 1e-12);
        // Above the last midpoint (9.0): w1 > 1.
        let (j0, j1, w2) = a.stencil(10.0);
        assert_eq!((j0, j1), (3, 4));
        assert!((w2 - 1.5).abs() < 1e-12);
    }

    #[test]
    fn log_stencil_uses_log_coordinates() {
        let a = Axis::new(&ParamSpec::log("x", 1.0, 16.0), 4);
        // Midpoints are sqrt2, 2sqrt2, 4sqrt2, 8sqrt2; x = 2 is the geometric
        // mean of midpoints 0 and 1 -> w1 = 0.5 in log space.
        let (i0, i1, w1) = a.stencil(2.0);
        assert_eq!((i0, i1), (0, 1));
        assert!((w1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_cell_axis_point_stencil() {
        let a = Axis::new(&ParamSpec::linear("x", 0.0, 1.0), 1);
        let (i0, i1, w) = a.stencil(0.7);
        assert_eq!((i0, i1, w), (0, 0, 0.0));
    }
}
