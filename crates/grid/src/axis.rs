//! Discretization of one parameter onto one tensor mode (paper §5.1).
//!
//! A numerical parameter's range `[X_0, X_I]` is split into `I` sub-intervals
//! with uniform or logarithmic spacing. Tensor index `i` along this mode is
//! associated with the *mid-point* `M_i` of sub-interval `[X_i, X_{i+1}]`;
//! for logarithmic spacing the paper uses the geometric mean, rounded up to
//! an integer for integer parameters (`M = ⌈exp((log X_i + log X_{i+1})/2)⌉`).

use crate::param::{ParamSpec, Spacing};

/// One discretized tensor mode.
#[derive(Debug, Clone)]
pub struct Axis {
    spec: ParamSpec,
    /// Sub-interval boundaries `X_0 .. X_I` (length `cells + 1`); for
    /// categorical parameters this is empty.
    boundaries: Vec<f64>,
    /// Cell mid-points `M_0 .. M_{I-1}` (length `cells`); for categorical
    /// parameters `M_i = i`.
    midpoints: Vec<f64>,
}

impl Axis {
    /// Discretize `spec` into `cells` sub-intervals. For categorical
    /// parameters `cells` is ignored (cardinality wins).
    pub fn new(spec: &ParamSpec, cells: usize) -> Self {
        match spec {
            ParamSpec::Categorical { cardinality, .. } => {
                let midpoints = (0..*cardinality).map(|i| i as f64).collect();
                Self {
                    spec: spec.clone(),
                    boundaries: Vec::new(),
                    midpoints,
                }
            }
            ParamSpec::Numerical {
                lo,
                hi,
                spacing,
                integer,
                ..
            } => {
                assert!(cells >= 1, "Axis: need at least one cell");
                // Integer axes cannot usefully have more cells than distinct
                // integer values: extra cells would get duplicate midpoints
                // and break the binning/interpolation correspondence.
                let cells = if *integer {
                    let span = (hi.floor() - lo.ceil()) as usize + 1;
                    cells.min(span.max(1))
                } else {
                    cells
                };
                let boundaries: Vec<f64> = match spacing {
                    Spacing::Uniform => (0..=cells)
                        .map(|i| lo + (hi - lo) * i as f64 / cells as f64)
                        .collect(),
                    Spacing::Logarithmic => {
                        let (l0, l1) = (lo.ln(), hi.ln());
                        (0..=cells)
                            .map(|i| (l0 + (l1 - l0) * i as f64 / cells as f64).exp())
                            .collect()
                    }
                };
                let mut midpoints: Vec<f64> = boundaries
                    .windows(2)
                    .map(|w| {
                        let m = match spacing {
                            Spacing::Uniform => 0.5 * (w[0] + w[1]),
                            Spacing::Logarithmic => ((w[0].ln() + w[1].ln()) / 2.0).exp(),
                        };
                        if *integer {
                            // Paper's ⌈geometric-mean⌉ rule, clamped into the
                            // cell so grid-point and cell stay associated.
                            m.ceil().clamp(w[0].ceil(), w[1].floor().max(w[0].ceil()))
                        } else {
                            m
                        }
                    })
                    .collect();
                if *integer {
                    // Deduplicate: nudge repeated integer midpoints upward
                    // within their cell where possible.
                    for i in 1..midpoints.len() {
                        if midpoints[i] <= midpoints[i - 1] {
                            let cap = boundaries[i + 1].floor();
                            midpoints[i] = (midpoints[i - 1] + 1.0).min(cap.max(midpoints[i]));
                        }
                    }
                }
                Self {
                    spec: spec.clone(),
                    boundaries,
                    midpoints,
                }
            }
        }
    }

    /// The parameter this axis discretizes.
    pub fn spec(&self) -> &ParamSpec {
        &self.spec
    }

    /// Number of tensor indices along this mode.
    pub fn len(&self) -> usize {
        self.midpoints.len()
    }

    /// True when the axis has a single index.
    pub fn is_empty(&self) -> bool {
        self.midpoints.is_empty()
    }

    /// Sub-interval boundaries (empty for categorical).
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// Cell mid-points `M_i`.
    pub fn midpoints(&self) -> &[f64] {
        &self.midpoints
    }

    /// Tensor index of the cell containing `x` (clamped to the range).
    pub fn cell_of(&self, x: f64) -> usize {
        match &self.spec {
            ParamSpec::Categorical { cardinality, .. } => {
                (x.round().max(0.0) as usize).min(cardinality - 1)
            }
            ParamSpec::Numerical { .. } => {
                let n = self.len();
                // Binary search over boundaries: find i with b[i] <= x < b[i+1].
                match self
                    .boundaries
                    .binary_search_by(|b| b.partial_cmp(&x).expect("NaN in axis lookup"))
                {
                    Ok(i) => i.min(n - 1),
                    Err(ins) => ins.saturating_sub(1).min(n - 1),
                }
            }
        }
    }

    /// Interpolation stencil along this mode for value `x` (Eq. 5).
    ///
    /// Returns `(i0, i1, w1)`: the prediction uses `(1 - w1) * t[i0] + w1 *
    /// t[i1]`. For categorical parameters (or single-cell axes) this is a
    /// point stencil. Values beyond the first/last mid-point use the same
    /// two-point form with `w1` outside `[0, 1]`, which is exactly linear
    /// extrapolation "along the j'th mode using the corresponding values"
    /// (paper §5.1).
    pub fn stencil(&self, x: f64) -> (usize, usize, f64) {
        let n = self.len();
        if n == 1 || self.spec.is_categorical() {
            let i = self.cell_of(x);
            return (i, i, 0.0);
        }
        let h = |v: f64| self.spec.h(v);
        let hx = h(x);
        // Locate the midpoint bracket [M_i, M_{i+1}) containing x; clamp to
        // the extreme bracket outside the midpoint range.
        let mut i = match self
            .midpoints
            .binary_search_by(|m| m.partial_cmp(&x).expect("NaN in axis stencil"))
        {
            Ok(i) => i,
            Err(ins) => ins.saturating_sub(1),
        };
        i = i.min(n - 2);
        let (m0, m1) = (self.midpoints[i], self.midpoints[i + 1]);
        let denom = h(m1) - h(m0);
        let w1 = if denom.abs() < f64::EPSILON {
            0.0
        } else {
            (hx - h(m0)) / denom
        };
        (i, i + 1, w1)
    }
}

/// Lookup strategy baked into an [`AxisTable`].
#[derive(Debug, Clone, Copy, PartialEq)]
enum TableKind {
    /// Categorical axis: round-and-clamp to the cardinality, point stencil.
    Categorical { cardinality: usize },
    /// Single-index axis: always the point stencil `(0, 0, 0.0)`.
    Point,
    /// Direct index computation: midpoints are (up to float round-off)
    /// uniformly spaced in `h`-space, so the bracket index is one multiply
    /// away; a bounded fix-up against the exact midpoints absorbs the
    /// round-off. Linear and log float axes land here.
    Direct { inv_step: f64 },
    /// Flat binary search over the sorted midpoints — the fallback for
    /// integer axes, whose ceil-and-nudge midpoints are not uniformly
    /// spaced (and may even repeat, where only the exact `binary_search_by`
    /// tie behaviour reproduces [`Axis::stencil`] bit-for-bit).
    Search,
}

/// Precomputed quantization table for one axis — the grid half of the
/// compiled query path.
///
/// [`Axis::stencil`] pays, per query, an enum dispatch on [`ParamSpec`], a
/// binary search over the midpoints, and **three** `h`-transforms (`ln` on
/// log axes): `h(x)`, `h(M_i)`, `h(M_{i+1})`. The table bakes the
/// h-transformed midpoints and bracket widths once, and replaces the search
/// with a direct index computation wherever the spacing allows, leaving one
/// `ln` per query as the only transcendental.
///
/// Contract: `table.stencil(x)` returns bitwise-identical `(i0, i1, w1)` to
/// `axis.stencil(x)` for every non-NaN `x`; numerical-axis tables panic on
/// NaN like the naive path (categorical axes clamp NaN to index 0 on both
/// paths — `NaN.max(0.0)` is `0.0`).
#[derive(Debug, Clone, PartialEq)]
pub struct AxisTable {
    kind: TableKind,
    /// Cell mid-points (the naive search key). Empty for categorical axes.
    mid: Vec<f64>,
    /// `h(M_i)`, baked with the same [`ParamSpec::h`] the naive path calls.
    h_mid: Vec<f64>,
    /// `denom[i] = h_mid[i+1] - h_mid[i]` — the stencil bracket widths.
    denom: Vec<f64>,
    /// Natural-log `h`-transform (log-spaced axes)?
    log_h: bool,
}

impl AxisTable {
    /// Number of tensor indices along the mode.
    pub fn len(&self) -> usize {
        match self.kind {
            TableKind::Categorical { cardinality } => cardinality,
            _ => self.mid.len().max(1),
        }
    }

    /// True when the axis has no index (never for tables built from a
    /// well-formed [`Axis`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Baked size in bytes: the actual midpoint/h-midpoint/width vectors
    /// (empty for categorical and point axes) plus a small header.
    pub fn size_bytes(&self) -> usize {
        (self.mid.len() + self.h_mid.len() + self.denom.len()) * 8 + 16
    }

    /// The `h`-transform of the source axis.
    #[inline]
    fn h(&self, x: f64) -> f64 {
        if self.log_h {
            x.max(f64::MIN_POSITIVE).ln()
        } else {
            x
        }
    }

    /// Bracket weight at located index `i`: same expression and guards as
    /// the tail of [`Axis::stencil`], on the baked `h(M_i)` values.
    #[inline]
    fn weighted(&self, hx: f64, i: usize) -> (usize, usize, f64) {
        let denom = self.denom[i];
        let w1 = if denom.abs() < f64::EPSILON {
            0.0
        } else {
            (hx - self.h_mid[i]) / denom
        };
        (i, i + 1, w1)
    }

    /// Categorical round-and-clamp point stencil.
    #[inline(always)]
    fn stencil_categorical(cardinality: usize, x: f64) -> (usize, usize, f64) {
        let i = (x.round().max(0.0) as usize).min(cardinality - 1);
        (i, i, 0.0)
    }

    /// Direct-index bracket lookup: one multiply off the h-uniform
    /// spacing, then a bounded fix-up against the exact midpoints (the
    /// naive search key) — the guess is within one bracket for any
    /// monotone midpoint vector, so each loop runs 0–1 times. The result
    /// is the exact predicate the naive binary search resolves to: the
    /// largest `i <= n-2` with `mid[i] <= x` (0 when none).
    #[inline(always)]
    fn stencil_direct(&self, inv_step: f64, x: f64) -> (usize, usize, f64) {
        assert!(!x.is_nan(), "NaN in axis table");
        let hx = self.h(x);
        let n = self.mid.len();
        let guess = ((hx - self.h_mid[0]) * inv_step).min((n - 2) as f64);
        let mut i = if guess > 0.0 { guess as usize } else { 0 };
        while i < n - 2 && self.mid[i + 1] <= x {
            i += 1;
        }
        while i > 0 && self.mid[i] > x {
            i -= 1;
        }
        self.weighted(hx, i)
    }

    /// Fallback bracket lookup: the same flat binary search over the
    /// sorted midpoints the naive path runs.
    #[inline(always)]
    fn stencil_search(&self, x: f64) -> (usize, usize, f64) {
        let hx = self.h(x);
        let n = self.mid.len();
        let i = match self
            .mid
            .binary_search_by(|m| m.partial_cmp(&x).expect("NaN in axis table"))
        {
            Ok(i) => i.min(n - 2),
            Err(ins) => ins.saturating_sub(1).min(n - 2),
        };
        self.weighted(hx, i)
    }

    /// Interpolation stencil for value `x`; bitwise-identical to
    /// [`Axis::stencil`] on the source axis. One `h`-transform per call —
    /// the single remaining transcendental on log axes. `inline(always)`:
    /// this is the leaf of the compiled query kernel one crate up, and the
    /// cross-crate call boundary otherwise survives thin LTO.
    #[inline(always)]
    pub fn stencil(&self, x: f64) -> (usize, usize, f64) {
        match self.kind {
            TableKind::Categorical { cardinality } => Self::stencil_categorical(cardinality, x),
            TableKind::Point => {
                assert!(!x.is_nan(), "NaN in axis table");
                (0, 0, 0.0)
            }
            TableKind::Direct { inv_step } => self.stencil_direct(inv_step, x),
            TableKind::Search => self.stencil_search(x),
        }
    }

    /// Batched quantization: stencil every value of `xs` in order, handing
    /// `(k, (i0, i1, w1))` to `sink`. The lookup-kind dispatch is hoisted
    /// out of the loop — one branch per *batch* instead of per value — and
    /// each stencil is bitwise-identical to [`Self::stencil`]. This is the
    /// grid half of the compiled multi-query serving path.
    #[inline]
    pub fn stencils_for_each(
        &self,
        xs: impl Iterator<Item = f64>,
        mut sink: impl FnMut(usize, (usize, usize, f64)),
    ) {
        match self.kind {
            TableKind::Categorical { cardinality } => {
                for (k, x) in xs.enumerate() {
                    sink(k, Self::stencil_categorical(cardinality, x));
                }
            }
            TableKind::Point => {
                for (k, x) in xs.enumerate() {
                    assert!(!x.is_nan(), "NaN in axis table");
                    sink(k, (0, 0, 0.0));
                }
            }
            TableKind::Direct { inv_step } => {
                for (k, x) in xs.enumerate() {
                    sink(k, self.stencil_direct(inv_step, x));
                }
            }
            TableKind::Search => {
                for (k, x) in xs.enumerate() {
                    sink(k, self.stencil_search(x));
                }
            }
        }
    }
}

impl Axis {
    /// Bake the quantization table for this axis (see [`AxisTable`]).
    pub fn table(&self) -> AxisTable {
        if let ParamSpec::Categorical { cardinality, .. } = &self.spec {
            return AxisTable {
                kind: TableKind::Categorical {
                    cardinality: *cardinality,
                },
                mid: Vec::new(),
                h_mid: Vec::new(),
                denom: Vec::new(),
                log_h: false,
            };
        }
        let log_h = matches!(
            &self.spec,
            ParamSpec::Numerical {
                spacing: Spacing::Logarithmic,
                ..
            }
        );
        let integer = matches!(&self.spec, ParamSpec::Numerical { integer: true, .. });
        let n = self.midpoints.len();
        let h_mid: Vec<f64> = self.midpoints.iter().map(|&m| self.spec.h(m)).collect();
        let denom: Vec<f64> = h_mid.windows(2).map(|w| w[1] - w[0]).collect();
        let kind = if n == 1 {
            TableKind::Point
        } else {
            // Direct indexing needs strictly increasing midpoints (so the
            // fix-up predicate is unambiguous) and a usable uniform step in
            // h-space. Integer axes use nudged midpoints — always Search.
            let strictly_increasing = self.midpoints.windows(2).all(|w| w[0] < w[1]);
            let step = (h_mid[n - 1] - h_mid[0]) / (n - 1) as f64;
            let inv_step = 1.0 / step;
            if !integer && strictly_increasing && inv_step.is_finite() && step > 0.0 {
                TableKind::Direct { inv_step }
            } else {
                TableKind::Search
            }
        };
        AxisTable {
            kind,
            mid: self.midpoints.clone(),
            h_mid,
            denom,
            log_h,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamSpec;

    #[test]
    fn uniform_boundaries_and_midpoints() {
        let a = Axis::new(&ParamSpec::linear("x", 0.0, 10.0), 5);
        assert_eq!(a.len(), 5);
        assert_eq!(a.boundaries(), &[0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
        assert_eq!(a.midpoints(), &[1.0, 3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn log_boundaries_are_geometric() {
        let a = Axis::new(&ParamSpec::log("x", 1.0, 16.0), 4);
        let b = a.boundaries();
        for w in b.windows(2) {
            assert!((w[1] / w[0] - 2.0).abs() < 1e-12, "ratio {}", w[1] / w[0]);
        }
        // Midpoints are geometric means.
        assert!((a.midpoints()[0] - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn integer_midpoints_are_ceiled() {
        let a = Axis::new(&ParamSpec::log_int("m", 32.0, 4096.0), 7);
        for &m in a.midpoints() {
            assert_eq!(m, m.ceil());
        }
    }

    #[test]
    fn cell_lookup_uniform() {
        let a = Axis::new(&ParamSpec::linear("x", 0.0, 10.0), 5);
        assert_eq!(a.cell_of(0.0), 0);
        assert_eq!(a.cell_of(1.99), 0);
        assert_eq!(a.cell_of(2.0), 1);
        assert_eq!(a.cell_of(9.99), 4);
        assert_eq!(a.cell_of(10.0), 4); // clamped top boundary
        assert_eq!(a.cell_of(-5.0), 0); // clamped below
        assert_eq!(a.cell_of(50.0), 4); // clamped above
    }

    #[test]
    fn cell_lookup_log() {
        let a = Axis::new(&ParamSpec::log("x", 1.0, 256.0), 8);
        assert_eq!(a.cell_of(1.0), 0);
        assert_eq!(a.cell_of(3.0), 1); // [2,4)
        assert_eq!(a.cell_of(255.0), 7);
    }

    #[test]
    fn categorical_axis() {
        let a = Axis::new(&ParamSpec::categorical("solver", 3), 99);
        assert_eq!(a.len(), 3);
        assert_eq!(a.cell_of(1.2), 1);
        assert_eq!(a.cell_of(7.0), 2); // clamped
        let (i0, i1, w) = a.stencil(2.0);
        assert_eq!((i0, i1, w), (2, 2, 0.0));
    }

    #[test]
    fn stencil_interpolates_between_midpoints() {
        let a = Axis::new(&ParamSpec::linear("x", 0.0, 10.0), 5);
        // x = 4.0 lies between midpoints 3 and 5: w1 = 0.5.
        let (i0, i1, w1) = a.stencil(4.0);
        assert_eq!((i0, i1), (1, 2));
        assert!((w1 - 0.5).abs() < 1e-12);
        // Exactly on a midpoint: weight 0 on the right neighbour.
        let (j0, _, w) = a.stencil(3.0);
        assert_eq!(j0, 1);
        assert!(w.abs() < 1e-12);
    }

    #[test]
    fn stencil_extrapolates_beyond_edge_midpoints() {
        let a = Axis::new(&ParamSpec::linear("x", 0.0, 10.0), 5);
        // Below the first midpoint (1.0): linear extrapolation, w1 < 0.
        let (i0, i1, w1) = a.stencil(0.0);
        assert_eq!((i0, i1), (0, 1));
        assert!((w1 + 0.5).abs() < 1e-12);
        // Above the last midpoint (9.0): w1 > 1.
        let (j0, j1, w2) = a.stencil(10.0);
        assert_eq!((j0, j1), (3, 4));
        assert!((w2 - 1.5).abs() < 1e-12);
    }

    #[test]
    fn log_stencil_uses_log_coordinates() {
        let a = Axis::new(&ParamSpec::log("x", 1.0, 16.0), 4);
        // Midpoints are sqrt2, 2sqrt2, 4sqrt2, 8sqrt2; x = 2 is the geometric
        // mean of midpoints 0 and 1 -> w1 = 0.5 in log space.
        let (i0, i1, w1) = a.stencil(2.0);
        assert_eq!((i0, i1), (0, 1));
        assert!((w1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_cell_axis_point_stencil() {
        let a = Axis::new(&ParamSpec::linear("x", 0.0, 1.0), 1);
        let (i0, i1, w) = a.stencil(0.7);
        assert_eq!((i0, i1, w), (0, 0, 0.0));
    }

    /// Dense probe sweep: the baked table must reproduce `Axis::stencil`
    /// bit-for-bit, including beyond-the-range extrapolation probes.
    fn assert_table_matches(a: &Axis, lo: f64, hi: f64) {
        let t = a.table();
        assert_eq!(t.len(), a.len());
        let span = hi - lo;
        for k in 0..=2000 {
            // Probe from one span below to one span above the range.
            let x = lo - span + 3.0 * span * k as f64 / 2000.0;
            let (i0, i1, w1) = a.stencil(x);
            let (j0, j1, v1) = t.stencil(x);
            assert_eq!((i0, i1), (j0, j1), "indices differ at x={x}");
            assert_eq!(w1.to_bits(), v1.to_bits(), "weight differs at x={x}");
        }
        // Exact midpoints and boundaries are the adversarial probes for the
        // direct-index fix-up.
        for &m in a.midpoints().iter().chain(a.boundaries()) {
            let (i0, i1, w1) = a.stencil(m);
            let (j0, j1, v1) = t.stencil(m);
            assert_eq!((i0, i1, w1.to_bits()), (j0, j1, v1.to_bits()), "at x={m}");
        }
        // The batched path must agree with the scalar path, in order.
        let probes: Vec<f64> = (0..=100)
            .map(|k| lo - span + 3.0 * span * k as f64 / 100.0)
            .collect();
        let mut seen = 0usize;
        t.stencils_for_each(probes.iter().copied(), |k, (i0, i1, w1)| {
            assert_eq!(k, seen);
            seen += 1;
            let (j0, j1, v1) = t.stencil(probes[k]);
            assert_eq!((i0, i1, w1.to_bits()), (j0, j1, v1.to_bits()));
        });
        assert_eq!(seen, probes.len());
    }

    #[test]
    fn table_matches_axis_linear() {
        assert_table_matches(&Axis::new(&ParamSpec::linear("x", 0.0, 10.0), 5), 0.0, 10.0);
        assert_table_matches(&Axis::new(&ParamSpec::linear("x", -3.0, 7.5), 9), -3.0, 7.5);
    }

    #[test]
    fn table_matches_axis_log() {
        assert_table_matches(&Axis::new(&ParamSpec::log("x", 1.0, 256.0), 8), 1.0, 256.0);
        assert_table_matches(&Axis::new(&ParamSpec::log("x", 0.5, 1e6), 17), 0.5, 1e6);
    }

    #[test]
    fn table_matches_axis_integer_fallback() {
        // Nudged integer midpoints take the binary-search fallback.
        assert_table_matches(
            &Axis::new(&ParamSpec::log_int("m", 32.0, 4096.0), 7),
            32.0,
            4096.0,
        );
        assert_table_matches(
            &Axis::new(&ParamSpec::linear_int("p", 1.0, 9.0), 20),
            1.0,
            9.0,
        );
    }

    #[test]
    fn table_matches_axis_categorical_and_point() {
        let c = Axis::new(&ParamSpec::categorical("solver", 3), 99);
        let t = c.table();
        for x in [-2.0, 0.0, 0.4, 1.2, 2.0, 7.0] {
            assert_eq!(t.stencil(x), c.stencil(x));
        }
        assert_table_matches(&Axis::new(&ParamSpec::linear("x", 0.0, 1.0), 1), 0.0, 1.0);
    }
}
