//! Benchmark-parameter descriptors (paper §2.1 and §5.1).
//!
//! A configuration `x = (x_1, …, x_d)` mixes numerical parameters (matrix
//! dimension, message size, …), integer/architectural parameters (node
//! count, ppn), and categorical parameters (solver choice). Each kind maps
//! onto a tensor mode differently: numerical ranges get discretized into
//! sub-intervals with uniform or logarithmic spacing, categorical choices
//! are indexed directly.

/// How a numerical parameter's range is discretized (paper §5.1: "uniform or
/// logarithmic spacing", chosen per parameter; §6.0.4 places input and
/// architectural parameters on log scales and configuration parameters on
/// linear scales).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Spacing {
    /// Equal-width sub-intervals.
    Uniform,
    /// Equal-ratio sub-intervals (requires a positive range).
    Logarithmic,
}

/// One benchmark parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamSpec {
    /// Numerical parameter over `[lo, hi]`.
    Numerical {
        /// Human-readable name (used by harness printouts).
        name: String,
        /// Inclusive lower bound of the modeled range.
        lo: f64,
        /// Inclusive upper bound of the modeled range.
        hi: f64,
        /// Grid spacing for discretization.
        spacing: Spacing,
        /// Round grid mid-points to integers with the paper's
        /// `⌈exp(mean of logs)⌉` rule (matrix dimensions, node counts, …).
        integer: bool,
    },
    /// Categorical parameter with `cardinality` distinct choices, encoded as
    /// configuration values `0.0, 1.0, …`.
    Categorical {
        /// Human-readable name.
        name: String,
        /// Number of choices.
        cardinality: usize,
    },
}

impl ParamSpec {
    /// Numerical parameter with logarithmic spacing (the default for input
    /// and architectural parameters in §6.0.4).
    pub fn log(name: impl Into<String>, lo: f64, hi: f64) -> Self {
        assert!(
            lo > 0.0 && hi > lo,
            "log parameter needs 0 < lo < hi (got {lo}..{hi})"
        );
        Self::Numerical {
            name: name.into(),
            lo,
            hi,
            spacing: Spacing::Logarithmic,
            integer: false,
        }
    }

    /// Log-spaced integer parameter (node counts, matrix dimensions).
    pub fn log_int(name: impl Into<String>, lo: f64, hi: f64) -> Self {
        assert!(
            lo > 0.0 && hi > lo,
            "log parameter needs 0 < lo < hi (got {lo}..{hi})"
        );
        Self::Numerical {
            name: name.into(),
            lo,
            hi,
            spacing: Spacing::Logarithmic,
            integer: true,
        }
    }

    /// Numerical parameter with uniform spacing (configuration parameters).
    pub fn linear(name: impl Into<String>, lo: f64, hi: f64) -> Self {
        assert!(hi > lo, "linear parameter needs lo < hi (got {lo}..{hi})");
        Self::Numerical {
            name: name.into(),
            lo,
            hi,
            spacing: Spacing::Uniform,
            integer: false,
        }
    }

    /// Uniformly spaced integer parameter.
    pub fn linear_int(name: impl Into<String>, lo: f64, hi: f64) -> Self {
        assert!(hi > lo, "linear parameter needs lo < hi (got {lo}..{hi})");
        Self::Numerical {
            name: name.into(),
            lo,
            hi,
            spacing: Spacing::Uniform,
            integer: true,
        }
    }

    /// Categorical parameter.
    pub fn categorical(name: impl Into<String>, cardinality: usize) -> Self {
        assert!(cardinality >= 1, "categorical parameter needs >= 1 choice");
        Self::Categorical {
            name: name.into(),
            cardinality,
        }
    }

    /// Parameter name.
    pub fn name(&self) -> &str {
        match self {
            Self::Numerical { name, .. } | Self::Categorical { name, .. } => name,
        }
    }

    /// True for categorical parameters.
    pub fn is_categorical(&self) -> bool {
        matches!(self, Self::Categorical { .. })
    }

    /// Modeled range for numerical parameters, `None` for categorical.
    pub fn range(&self) -> Option<(f64, f64)> {
        match self {
            Self::Numerical { lo, hi, .. } => Some((*lo, *hi)),
            Self::Categorical { .. } => None,
        }
    }

    /// The coordinate transform `h_j` of Eq. 5: identity for uniform
    /// discretization, natural log for logarithmic.
    pub fn h(&self, x: f64) -> f64 {
        match self {
            Self::Numerical {
                spacing: Spacing::Logarithmic,
                ..
            } => x.max(f64::MIN_POSITIVE).ln(),
            _ => x,
        }
    }

    /// True when `x` lies inside the modeled range (always true for
    /// categorical values that round to a valid index). Values outside
    /// trigger the paper's §5.3 extrapolation path.
    pub fn in_domain(&self, x: f64) -> bool {
        match self {
            Self::Numerical { lo, hi, .. } => x >= *lo && x <= *hi,
            Self::Categorical { cardinality, .. } => {
                let i = x.round();
                i >= 0.0 && (i as usize) < *cardinality
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let p = ParamSpec::log("m", 32.0, 4096.0);
        assert_eq!(p.name(), "m");
        assert_eq!(p.range(), Some((32.0, 4096.0)));
        assert!(!p.is_categorical());
        let c = ParamSpec::categorical("solver", 2);
        assert!(c.is_categorical());
        assert_eq!(c.range(), None);
    }

    #[test]
    fn h_transform() {
        let lg = ParamSpec::log("x", 1.0, 100.0);
        assert!((lg.h(std::f64::consts::E) - 1.0).abs() < 1e-12);
        let ln = ParamSpec::linear("y", 0.0, 10.0);
        assert_eq!(ln.h(3.5), 3.5);
    }

    #[test]
    fn domain_checks() {
        let p = ParamSpec::log("x", 2.0, 8.0);
        assert!(p.in_domain(2.0) && p.in_domain(8.0) && p.in_domain(5.0));
        assert!(!p.in_domain(1.9) && !p.in_domain(8.1));
        let c = ParamSpec::categorical("c", 3);
        assert!(c.in_domain(0.0) && c.in_domain(2.0));
        assert!(!c.in_domain(3.0) && !c.in_domain(-1.0));
    }

    #[test]
    #[should_panic(expected = "log parameter")]
    fn log_rejects_nonpositive() {
        ParamSpec::log("bad", 0.0, 10.0);
    }

    #[test]
    #[should_panic(expected = ">= 1 choice")]
    fn categorical_rejects_empty() {
        ParamSpec::categorical("bad", 0);
    }
}
