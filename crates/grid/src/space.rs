//! Full parameter-space grids: configuration → tensor index / stencil.

use crate::axis::Axis;
use crate::param::ParamSpec;

/// An application's benchmark-parameter space (paper Table 2).
#[derive(Debug, Clone)]
pub struct ParamSpace {
    params: Vec<ParamSpec>,
}

impl ParamSpace {
    /// Build from parameter descriptors.
    pub fn new(params: Vec<ParamSpec>) -> Self {
        assert!(
            !params.is_empty(),
            "ParamSpace: need at least one parameter"
        );
        Self { params }
    }

    /// Number of parameters `d` (= tensor order).
    pub fn dim(&self) -> usize {
        self.params.len()
    }

    /// Parameter descriptors.
    pub fn params(&self) -> &[ParamSpec] {
        &self.params
    }

    /// Parameter by index.
    pub fn param(&self, j: usize) -> &ParamSpec {
        &self.params[j]
    }

    /// Per-parameter domain membership of a configuration; `false` entries
    /// trigger the §5.3 extrapolation path along that mode.
    pub fn in_domain(&self, config: &[f64]) -> Vec<bool> {
        assert_eq!(config.len(), self.dim());
        self.params
            .iter()
            .zip(config)
            .map(|(p, &x)| p.in_domain(x))
            .collect()
    }

    /// Discretize every numerical parameter into `cells` sub-intervals
    /// (categorical parameters keep their cardinality).
    pub fn grid_uniform_cells(&self, cells: usize) -> TensorGrid {
        let axes = self.params.iter().map(|p| Axis::new(p, cells)).collect();
        TensorGrid { axes }
    }

    /// Discretize with per-parameter cell counts (entries for categorical
    /// parameters are ignored).
    pub fn grid_with_cells(&self, cells: &[usize]) -> TensorGrid {
        assert_eq!(cells.len(), self.dim(), "grid_with_cells: wrong length");
        let axes = self
            .params
            .iter()
            .zip(cells)
            .map(|(p, &c)| Axis::new(p, c))
            .collect();
        TensorGrid { axes }
    }
}

/// A regular grid over the whole parameter space: one [`Axis`] per mode.
#[derive(Debug, Clone)]
pub struct TensorGrid {
    axes: Vec<Axis>,
}

impl TensorGrid {
    /// Build directly from axes.
    pub fn from_axes(axes: Vec<Axis>) -> Self {
        assert!(!axes.is_empty());
        Self { axes }
    }

    /// Tensor order.
    pub fn order(&self) -> usize {
        self.axes.len()
    }

    /// Tensor dimensions `I_1 .. I_d`.
    pub fn dims(&self) -> Vec<usize> {
        self.axes.iter().map(|a| a.len()).collect()
    }

    /// Total number of grid cells `Π I_j`.
    pub fn cell_count(&self) -> usize {
        self.axes.iter().map(|a| a.len()).product()
    }

    /// Axis for one mode.
    pub fn axis(&self, mode: usize) -> &Axis {
        &self.axes[mode]
    }

    /// Tensor multi-index of the cell containing `config` (clamped).
    pub fn cell_index(&self, config: &[f64]) -> Vec<usize> {
        assert_eq!(
            config.len(),
            self.order(),
            "cell_index: configuration order mismatch"
        );
        self.axes
            .iter()
            .zip(config)
            .map(|(a, &x)| a.cell_of(x))
            .collect()
    }

    /// Grid-cell mid-point associated with a tensor multi-index.
    pub fn midpoint(&self, idx: &[usize]) -> Vec<f64> {
        assert_eq!(idx.len(), self.order());
        self.axes
            .iter()
            .zip(idx)
            .map(|(a, &i)| a.midpoints()[i])
            .collect()
    }

    /// Per-mode interpolation stencils for `config` (see [`Axis::stencil`]).
    pub fn stencils(&self, config: &[f64]) -> Vec<(usize, usize, f64)> {
        assert_eq!(
            config.len(),
            self.order(),
            "stencils: configuration order mismatch"
        );
        self.axes
            .iter()
            .zip(config)
            .map(|(a, &x)| a.stencil(x))
            .collect()
    }

    /// Bake per-axis quantization tables for the compiled query path (one
    /// [`crate::axis::AxisTable`] per mode, see [`Axis::table`]). Tables
    /// are copies: rebake if the grid is rebuilt.
    pub fn bake_tables(&self) -> Vec<crate::axis::AxisTable> {
        self.axes.iter().map(Axis::table).collect()
    }

    /// Multilinear interpolation of Eq. 5: evaluates `values` at the `2^d`
    /// stencil corners and combines them with product weights. `values`
    /// receives tensor multi-indices (typically backed by a completed CP
    /// decomposition).
    pub fn interpolate(&self, config: &[f64], values: impl FnMut(&[usize]) -> f64) -> f64 {
        interpolate_corners(&self.stencils(config), values)
    }
}

/// Corner expansion shared by [`TensorGrid::interpolate`] and callers that
/// post-process stencils (e.g. the CPR model's observed-row masking):
/// combines `values` at every stencil corner with product weights.
pub fn interpolate_corners(
    stencils: &[(usize, usize, f64)],
    mut values: impl FnMut(&[usize]) -> f64,
) -> f64 {
    let d = stencils.len();
    let mut idx = vec![0usize; d];
    let mut total = 0.0;
    // Iterate over the 2^d corners; modes with point stencils contribute
    // a single corner (skip the duplicate by checking i0 == i1).
    let corners = 1usize << d;
    'corner: for mask in 0..corners {
        let mut weight = 1.0;
        for (j, &(i0, i1, w1)) in stencils.iter().enumerate() {
            let take_hi = (mask >> j) & 1 == 1;
            if take_hi {
                if i0 == i1 {
                    continue 'corner; // degenerate mode: only corner 0
                }
                weight *= w1;
                idx[j] = i1;
            } else {
                weight *= if i0 == i1 { 1.0 } else { 1.0 - w1 };
                idx[j] = i0;
            }
        }
        if weight != 0.0 {
            total += weight * values(&idx);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space2d() -> ParamSpace {
        ParamSpace::new(vec![
            ParamSpec::linear("x", 0.0, 10.0),
            ParamSpec::linear("y", 0.0, 10.0),
        ])
    }

    #[test]
    fn dims_and_cells() {
        let g = space2d().grid_uniform_cells(5);
        assert_eq!(g.dims(), vec![5, 5]);
        assert_eq!(g.cell_count(), 25);
    }

    #[test]
    fn mixed_space_keeps_categorical_cardinality() {
        let s = ParamSpace::new(vec![
            ParamSpec::log("n", 1.0, 1024.0),
            ParamSpec::categorical("solver", 3),
        ]);
        let g = s.grid_with_cells(&[8, 999]);
        assert_eq!(g.dims(), vec![8, 3]);
    }

    #[test]
    fn cell_index_clamps() {
        let g = space2d().grid_uniform_cells(5);
        assert_eq!(g.cell_index(&[3.0, 11.0]), vec![1, 4]);
        assert_eq!(g.cell_index(&[-1.0, 0.0]), vec![0, 0]);
    }

    #[test]
    fn midpoint_roundtrip() {
        let g = space2d().grid_uniform_cells(5);
        let m = g.midpoint(&[2, 3]);
        assert_eq!(m, vec![5.0, 7.0]);
        assert_eq!(g.cell_index(&m), vec![2, 3]);
    }

    #[test]
    fn interpolate_exact_on_multilinear_function() {
        // f(x, y) = 2x + 3y + 1 is multilinear: interpolation through
        // midpoint values must reproduce it exactly inside the midpoint hull.
        let g = space2d().grid_uniform_cells(5);
        let f = |x: f64, y: f64| 2.0 * x + 3.0 * y + 1.0;
        let pred = g.interpolate(&[4.3, 6.1], |idx| {
            let m = g.midpoint(idx);
            f(m[0], m[1])
        });
        assert!((pred - f(4.3, 6.1)).abs() < 1e-10, "pred {pred}");
    }

    #[test]
    fn interpolate_extrapolates_linearly_at_edges() {
        let g = space2d().grid_uniform_cells(5);
        let f = |x: f64, y: f64| 2.0 * x + 3.0 * y + 1.0;
        // 0.2 < first midpoint 1.0 -> linear edge extrapolation still exact
        // for a linear function.
        let pred = g.interpolate(&[0.2, 9.9], |idx| {
            let m = g.midpoint(idx);
            f(m[0], m[1])
        });
        assert!((pred - f(0.2, 9.9)).abs() < 1e-10, "pred {pred}");
    }

    #[test]
    fn interpolate_point_stencil_for_categorical() {
        let s = ParamSpace::new(vec![
            ParamSpec::linear("x", 0.0, 4.0),
            ParamSpec::categorical("c", 2),
        ]);
        let g = s.grid_uniform_cells(4);
        // values differ per category; config selects category 1.
        let pred = g.interpolate(&[0.5, 1.0], |idx| if idx[1] == 1 { 100.0 } else { 0.0 });
        assert_eq!(pred, 100.0);
    }

    #[test]
    fn weights_sum_to_one_inside_hull() {
        let g = space2d().grid_uniform_cells(8);
        // Interpolating the constant function must give the constant.
        let pred = g.interpolate(&[3.7, 8.2], |_| 42.0);
        assert!((pred - 42.0).abs() < 1e-12);
    }

    #[test]
    fn baked_tables_match_grid_stencils() {
        let s = ParamSpace::new(vec![
            ParamSpec::log("n", 1.0, 1024.0),
            ParamSpec::linear("b", 0.0, 10.0),
            ParamSpec::categorical("solver", 3),
        ]);
        let g = s.grid_with_cells(&[8, 5, 1]);
        let tables = g.bake_tables();
        assert_eq!(tables.len(), 3);
        for probe in [[37.0, 4.3, 1.0], [0.2, -1.0, 5.0], [2048.0, 11.0, 0.0]] {
            let naive = g.stencils(&probe);
            for (j, t) in tables.iter().enumerate() {
                let (i0, i1, w1) = t.stencil(probe[j]);
                assert_eq!((i0, i1), (naive[j].0, naive[j].1));
                assert_eq!(w1.to_bits(), naive[j].2.to_bits());
            }
        }
    }

    #[test]
    fn in_domain_flags() {
        let s = space2d();
        assert_eq!(s.in_domain(&[5.0, 20.0]), vec![true, false]);
    }

    #[test]
    fn log_grid_interpolates_power_laws_exactly() {
        // f(x) = x^1.5 is linear in log-log space, so a log-spaced axis
        // interpolating log-midpoint values of log f reproduces it.
        let s = ParamSpace::new(vec![ParamSpec::log("n", 1.0, 1024.0)]);
        let g = s.grid_uniform_cells(10);
        let pred_log = g.interpolate(&[37.0], |idx| {
            let m = g.midpoint(idx);
            1.5 * m[0].ln()
        });
        assert!((pred_log - 1.5 * 37.0_f64.ln()).abs() < 1e-10);
    }
}
