//! # cpr-grid — parameter-space discretization and grid interpolation
//!
//! Implements §5.1 of the paper: regular-grid discretization of an
//! application's benchmark-parameter space (uniform or logarithmic spacing,
//! integer mid-point rounding, categorical indexing) and the multilinear
//! interpolation / boundary linear extrapolation of Eq. 5 that turns
//! completed tensor entries into execution-time predictions.

pub mod axis;
pub mod param;
pub mod space;

pub use axis::{Axis, AxisTable};
pub use param::{ParamSpec, Spacing};
pub use space::{ParamSpace, TensorGrid};
