//! Property-based tests for grid discretization and interpolation.

use cpr_grid::{Axis, ParamSpace, ParamSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cell_of_respects_boundaries(
        cells in 1usize..32,
        x in -5.0..15.0f64,
    ) {
        let a = Axis::new(&ParamSpec::linear("x", 0.0, 10.0), cells);
        let i = a.cell_of(x);
        prop_assert!(i < cells);
        if (0.0..10.0).contains(&x) {
            let b = a.boundaries();
            prop_assert!(b[i] <= x + 1e-12);
            prop_assert!(x < b[i + 1] + 1e-12);
        }
    }

    #[test]
    fn log_midpoints_inside_their_cells(cells in 1usize..24) {
        let a = Axis::new(&ParamSpec::log("x", 2.0, 2048.0), cells);
        let b = a.boundaries();
        for (i, &m) in a.midpoints().iter().enumerate() {
            prop_assert!(b[i] <= m && m <= b[i + 1] + 1e-9,
                "midpoint {m} outside [{}, {}]", b[i], b[i + 1]);
        }
    }

    #[test]
    fn midpoints_strictly_increasing(cells in 1usize..32) {
        for spec in [ParamSpec::linear("u", 0.0, 1.0), ParamSpec::log("l", 1.0, 4096.0)] {
            let a = Axis::new(&spec, cells);
            for w in a.midpoints().windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn stencil_weights_partition_unity_in_hull(
        cells in 2usize..16,
        t in 0.0..1.0f64,
    ) {
        let a = Axis::new(&ParamSpec::linear("x", 0.0, 10.0), cells);
        let mids = a.midpoints();
        // x strictly inside the midpoint hull.
        let x = mids[0] + t * (mids[cells - 1] - mids[0]);
        let (i0, i1, w1) = a.stencil(x);
        prop_assert!(i0 < cells && i1 < cells);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&w1), "w1 = {w1} not in [0,1] for in-hull x");
        // Interpolating f(m) = m reproduces x.
        let rec = (1.0 - w1) * mids[i0] + w1 * mids[i1];
        prop_assert!((rec - x).abs() < 1e-9);
    }

    #[test]
    fn interpolation_exact_for_multilinear_3d(
        x in 0.5..9.5f64,
        y in 0.5..9.5f64,
        z in 0.5..9.5f64,
    ) {
        let s = ParamSpace::new(vec![
            ParamSpec::linear("x", 0.0, 10.0),
            ParamSpec::linear("y", 0.0, 10.0),
            ParamSpec::linear("z", 0.0, 10.0),
        ]);
        let g = s.grid_uniform_cells(5);
        // Multilinear with cross terms: a + bx + cy + dz + exy + fyz + gxz + hxyz.
        let f = |x: f64, y: f64, z: f64|
            1.0 + 2.0 * x + 3.0 * y - z + 0.5 * x * y - 0.25 * y * z + 0.125 * x * z + 0.01 * x * y * z;
        let pred = g.interpolate(&[x, y, z], |idx| {
            let m = g.midpoint(idx);
            f(m[0], m[1], m[2])
        });
        prop_assert!((pred - f(x, y, z)).abs() < 1e-8 * f(x, y, z).abs().max(1.0));
    }

    #[test]
    fn constant_function_interpolates_to_constant_everywhere(
        x in -3.0..13.0f64,
        y in -3.0..13.0f64,
    ) {
        // Includes out-of-hull points: linear extrapolation of a constant is
        // the constant.
        let s = ParamSpace::new(vec![
            ParamSpec::linear("x", 0.0, 10.0),
            ParamSpec::log("y", 1.0, 1000.0),
        ]);
        let g = s.grid_uniform_cells(6);
        let pred = g.interpolate(&[x, y.max(0.1)], |_| 7.25);
        prop_assert!((pred - 7.25).abs() < 1e-9);
    }

    #[test]
    fn cell_index_matches_per_axis_lookup(
        x in 0.0..10.0f64,
        c in 0usize..4,
    ) {
        let s = ParamSpace::new(vec![
            ParamSpec::linear("x", 0.0, 10.0),
            ParamSpec::categorical("c", 4),
        ]);
        let g = s.grid_uniform_cells(7);
        let idx = g.cell_index(&[x, c as f64]);
        prop_assert_eq!(idx[0], g.axis(0).cell_of(x));
        prop_assert_eq!(idx[1], c);
    }
}
