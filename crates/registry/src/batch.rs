//! The batching front end: group a mixed query stream by [`ModelId`].
//!
//! A production request stream interleaves queries against many models.
//! Serving them one by one pays a registry lookup, a plan load, and a cold
//! kernel entry per query; grouping first lets each model's queries ride
//! [`cpr_core::PredictPlan::predict_into`]'s chunked pipeline — one lookup
//! and one batched kernel sweep per distinct model. Grouping never changes
//! results: every output lands at its query's input position, and each
//! prediction depends only on its own (model, probe) pair.

use crate::ModelId;
use std::collections::HashMap;

/// Partition query indices by model, preserving first-appearance order of
/// the models and input order within each group (`u32` indices: batches
/// beyond 4 G queries are not a thing this side of the wire).
pub(crate) fn group_by_model<'a>(
    ids: impl Iterator<Item = &'a ModelId>,
) -> Vec<(&'a ModelId, Vec<u32>)> {
    let mut groups: Vec<(&'a ModelId, Vec<u32>)> = Vec::new();
    let mut slot: HashMap<&'a ModelId, usize> = HashMap::new();
    for (i, id) in ids.enumerate() {
        match slot.get(id) {
            Some(&g) => groups[g].1.push(i as u32),
            None => {
                slot.insert(id, groups.len());
                groups.push((id, vec![i as u32]));
            }
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> ModelId {
        ModelId::new(s, "mach", "time")
    }

    #[test]
    fn groups_preserve_order_and_cover_all_indices() {
        let ids = [id("b"), id("a"), id("b"), id("c"), id("a"), id("b")];
        let groups = group_by_model(ids.iter());
        assert_eq!(groups.len(), 3);
        // First-appearance order of models...
        assert_eq!(groups[0].0, &id("b"));
        assert_eq!(groups[1].0, &id("a"));
        assert_eq!(groups[2].0, &id("c"));
        // ...input order within each group, and a partition of 0..n.
        assert_eq!(groups[0].1, vec![0, 2, 5]);
        assert_eq!(groups[1].1, vec![1, 4]);
        assert_eq!(groups[2].1, vec![3]);
        let mut all: Vec<u32> = groups.iter().flat_map(|(_, v)| v.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..6).collect::<Vec<u32>>());
    }

    #[test]
    fn empty_stream_yields_no_groups() {
        assert!(group_by_model(std::iter::empty()).is_empty());
    }
}
