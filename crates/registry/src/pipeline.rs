//! Background refit-and-swap: the self-healing loop that keeps a served
//! fleet current under continuous telemetry.
//!
//! The paper's deployment story is a performance model fed by production
//! measurements; this module is the part that survives production.
//! Telemetry batches are [`RefitPipeline::submit`]ted per model into a
//! bounded queue (explicit shed policy, NaN/Inf quarantine), refit on a
//! small worker pool through the existing [`StreamingCpr`] warm-start
//! path, and **quality-gated** before serving: a candidate must match the
//! live plan's residuals on a reserved holdout slice, or it is discarded
//! and the last-good plan keeps serving. Every failure mode is contained:
//!
//! * **Panic** in a fit — caught (`catch_unwind`); the candidate clone is
//!   discarded, the committed trainer is untouched.
//! * **Deadline** blow-through — the candidate is discarded after the
//!   fact (the sweep budget bounds the work; the deadline bounds what a
//!   pathological batch can cost before being declared failed).
//! * **Corrupt candidate bytes** — candidates are installed through the
//!   same wire parse as a cold load; a parse failure rejects the install.
//! * **Regression** — the holdout gate refuses candidates whose MLogQ
//!   worsens beyond the configured slack.
//! * **Repeated failure** — deterministic exponential-backoff retries up
//!   to a budget, and a per-model circuit breaker (closed → open →
//!   half-open, [`crate::CircuitBreaker`]) that stops burning workers on
//!   a model that keeps failing.
//!
//! Through all of it the registry never stops serving: readers see the
//! last successfully gated plan, bitwise-stable, until the instant an
//! atomic [`ModelRegistry::swap_if_current`] publishes a better one. A
//! [`FaultInjector`] threads through every failure point so each of these
//! claims is deterministically testable (`tests/fault_injection.rs`).
//!
//! Data is not lost on rejection: a gate-rejected batch is absorbed into
//! the committed trainer's statistics ([`StreamingCpr::absorb`] — no
//! sweeps, factors untouched) so the next refit trains on it. Batches
//! dropped by shedding or retry exhaustion *are* lost, and counted.

use crate::error::RegistryError;
use crate::fault::FaultInjector;
use crate::health::{BreakerConfig, BreakerState, CircuitBreaker, ModelHealth};
use crate::id::ModelId;
use crate::registry::{ModelRegistry, SwapOutcome};
use cpr_core::{holdout_metrics, serialize, CprModel, Dataset, PredictPlan, StreamingCpr};
use cpr_obs::{Counter, EventKind, Gauge, Histogram, MetricsRegistry};
use cpr_store::FleetStore;
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What happens to a newly submitted batch when a model's queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Refuse the new batch with [`RegistryError::QueueFull`] —
    /// backpressure to the producer, queued telemetry wins.
    RejectNewest,
    /// Evict the oldest queued batch for that model to admit the new one —
    /// freshest telemetry wins, the eviction is counted in
    /// [`PipelineStats::shed`].
    DropOldest,
}

/// Tuning for a [`RefitPipeline`]. The defaults are sized for "a few
/// dozen models, telemetry every few seconds"; every knob exists because
/// a test or an operator needs to turn it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Refit worker threads. `0` is legal (nothing drains — useful for
    /// tests that inspect the queue, useless in production).
    pub workers: usize,
    /// Max queued batches per model before the shed policy engages.
    /// Retries re-enter the queue outside this bound (they were already
    /// admitted once).
    pub queue_capacity: usize,
    /// What to do with a batch that finds the queue full.
    pub shed: ShedPolicy,
    /// ALS sweeps per refit job — the work budget.
    pub sweep_budget: usize,
    /// Wall-clock budget per fit; a slower fit is declared failed.
    pub deadline: Duration,
    /// Fraction of each batch reserved for the holdout gate (never
    /// trained on). `0.0` disables reservation — refits then swap
    /// ungated.
    pub holdout_frac: f64,
    /// Max holdout samples retained per model (oldest evicted first).
    pub holdout_cap: usize,
    /// Gate tolerance: a candidate passes iff its holdout MLogQ is at
    /// most `(1 + gate_slack) ×` the live plan's. Negative slack demands
    /// strict improvement (and `<= -1.0` rejects everything — a test
    /// lever).
    pub gate_slack: f64,
    /// Retries after a failed attempt (panic, timeout, corrupt install,
    /// lost swap race). Gate rejections are terminal — refitting the same
    /// data would lose the same gate.
    pub max_retries: u32,
    /// Backoff before retry `n` (0-based) is `retry_backoff · 2ⁿ`…
    pub retry_backoff: Duration,
    /// …capped here.
    pub retry_backoff_max: Duration,
    /// Per-model circuit breaker tuning.
    pub breaker: BreakerConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 4,
            shed: ShedPolicy::RejectNewest,
            sweep_budget: 8,
            deadline: Duration::from_secs(5),
            holdout_frac: 0.2,
            holdout_cap: 256,
            gate_slack: 0.05,
            max_retries: 2,
            retry_backoff: Duration::from_millis(10),
            retry_backoff_max: Duration::from_secs(1),
            breaker: BreakerConfig::default(),
        }
    }
}

impl PipelineConfig {
    /// Reserve every `k`-th sample for the holdout; 0 disables.
    fn holdout_every(&self) -> usize {
        if self.holdout_frac <= 0.0 {
            0
        } else {
            // frac ≥ 0.5 clamps to "every 2nd": the first sample of a
            // batch always trains, so a job can never be all-holdout.
            ((1.0 / self.holdout_frac).round() as usize).max(2)
        }
    }

    fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u64 << attempt.min(32);
        self.retry_backoff
            .checked_mul(u32::try_from(factor).unwrap_or(u32::MAX))
            .unwrap_or(self.retry_backoff_max)
            .min(self.retry_backoff_max)
    }
}

/// What [`RefitPipeline::submit`] did with a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitReceipt {
    /// Job index assigned to this submission — the coordinate fault
    /// injection and logs refer to. Every submission consumes an index,
    /// including ones that queue nothing.
    pub job: u64,
    /// Samples accepted after quarantine.
    pub accepted: usize,
    /// Samples quarantined (non-finite parameter or measurement,
    /// non-positive measurement, wrong dimension).
    pub quarantined: usize,
    /// Queued batches evicted to admit this one (`DropOldest` only).
    pub shed: usize,
}

/// What [`RefitPipeline::replay`] did with the recovered WAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayReport {
    /// Valid WAL batches re-submitted to tracked models.
    pub replayed: u64,
    /// Valid batches whose model is not tracked (or whose key did not
    /// decode) — left in the log, not lost.
    pub orphaned: u64,
    /// Batches refused by a full queue under `RejectNewest` — left in
    /// the log; they replay again on the next start.
    pub rejected: u64,
    /// Whether a torn/corrupt tail was discarded (and truncated away).
    pub torn: bool,
}

/// Counters over the pipeline's lifetime plus a point-in-time queue view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineStats {
    /// Batches submitted (including fully quarantined ones).
    pub submitted: u64,
    /// Samples quarantined at submission.
    pub quarantined: u64,
    /// Batches shed (evicted under `DropOldest`, refused under
    /// `RejectNewest`).
    pub shed: u64,
    /// Candidates gated and hot-swapped into the registry.
    pub swapped: u64,
    /// Swaps that went through with an empty holdout (gate vacuous).
    pub ungated_swaps: u64,
    /// Candidates the quality gate refused.
    pub gate_rejected: u64,
    /// Fit panics contained.
    pub panics: u64,
    /// Fits that blew the deadline.
    pub timeouts: u64,
    /// Fit errors surfaced as `Result::Err` (not panics).
    pub fit_errors: u64,
    /// Candidate installs refused because the wire bytes failed to parse.
    pub corrupt_installs: u64,
    /// Swaps abandoned because another install won the race.
    pub lost_races: u64,
    /// Jobs re-queued for retry with backoff.
    pub retries: u64,
    /// Jobs deferred by an open circuit breaker.
    pub deferred: u64,
    /// Jobs dropped after exhausting retries (their batch data is lost).
    pub dropped_jobs: u64,
    /// Jobs abandoned because the model vanished from the registry or the
    /// tracking table mid-flight.
    pub orphaned: u64,
    /// Batches appended to the telemetry WAL before queueing (store
    /// attached only).
    pub wal_appends: u64,
    /// WAL appends that failed; the batch was queued anyway (serving
    /// and refitting degrade gracefully, durability is what's lost).
    pub wal_append_failed: u64,
    /// Gated swaps whose model reached the durable snapshot store.
    /// With a store attached, `swapped == persisted + persist_failed`
    /// once idle.
    pub persisted: u64,
    /// Gated swaps whose snapshot persist failed — the swap still
    /// serves; its batches stay in the WAL for the next persist or a
    /// post-restart replay.
    pub persist_failed: u64,
    /// WAL batches re-submitted by [`RefitPipeline::replay`] after a
    /// restart.
    pub replayed: u64,
    /// WAL entries removed by compaction after their data reached a
    /// durable snapshot (or was terminally dropped).
    pub compacted: u64,
    /// Batches currently queued.
    pub queued: usize,
    /// Jobs currently being refit.
    pub in_flight: usize,
    /// Models currently tracked.
    pub tracked: usize,
}

struct Job {
    id: ModelId,
    index: u64,
    attempt: u32,
    /// Training samples (post-quarantine; post-holdout-split once a
    /// worker has picked the job up).
    batch: Vec<(Vec<f64>, f64)>,
    /// Whether the holdout slice was already carved out (first pickup
    /// does it; retries must not re-donate samples).
    split: bool,
    /// Logical time (since the pipeline epoch) before which no worker
    /// may run this job — retry backoff and breaker deferral.
    not_before: Duration,
    /// WAL sequence number of this batch's entry (`None` when no store
    /// is attached or the append failed). Compacted away once the batch
    /// is reflected in a durable snapshot or terminally dropped.
    wal_seq: Option<u64>,
}

struct Tracked {
    /// The committed trainer: advanced only by gated swaps (factors) and
    /// absorbed batches (statistics). Workers refit a clone.
    trainer: StreamingCpr,
    /// Reserved holdout samples, never trained on. Bounded ring.
    holdout: VecDeque<(Vec<f64>, f64)>,
    breaker: CircuitBreaker,
    queued: usize,
    swaps: u64,
    gate_rejections: u64,
    last_swap: Option<Duration>,
    /// WAL sequence numbers whose data is already reflected in the
    /// committed trainer (absorbed or swapped but not yet durably
    /// persisted) or terminally abandoned — compacted at the next
    /// successful persist.
    pending_compaction: Vec<u64>,
    /// Snapshot generation this model was last durably persisted in.
    durable_gen: Option<u64>,
}

impl Tracked {
    fn new(trainer: StreamingCpr, breaker: BreakerConfig, durable_gen: Option<u64>) -> Self {
        Self {
            trainer,
            holdout: VecDeque::new(),
            breaker: CircuitBreaker::new(breaker),
            queued: 0,
            swaps: 0,
            gate_rejections: 0,
            last_swap: None,
            pending_compaction: Vec::new(),
            durable_gen,
        }
    }
}

struct PipeState {
    queue: VecDeque<Job>,
    in_flight: HashSet<ModelId>,
    tracked: HashMap<ModelId, Tracked>,
    shutdown: bool,
}

/// Pipeline lifetime counters — handles into the shared observability
/// hub ([`ModelRegistry::obs`]), exported as `cpr_pipeline_*_total`.
/// [`PipelineStats`] reads these same cells, so the stats struct and a
/// `/metrics` scrape can never disagree.
struct Counters {
    submitted: Counter,
    quarantined: Counter,
    shed: Counter,
    swapped: Counter,
    ungated_swaps: Counter,
    gate_rejected: Counter,
    panics: Counter,
    timeouts: Counter,
    fit_errors: Counter,
    corrupt_installs: Counter,
    lost_races: Counter,
    retries: Counter,
    deferred: Counter,
    dropped_jobs: Counter,
    orphaned: Counter,
    wal_appends: Counter,
    wal_append_failed: Counter,
    persisted: Counter,
    persist_failed: Counter,
    replayed: Counter,
    compacted: Counter,
}

impl Counters {
    fn new(obs: &MetricsRegistry) -> Self {
        Self {
            submitted: obs.counter("cpr_pipeline_submitted_total"),
            quarantined: obs.counter("cpr_pipeline_quarantined_total"),
            shed: obs.counter("cpr_pipeline_shed_total"),
            swapped: obs.counter("cpr_pipeline_swapped_total"),
            ungated_swaps: obs.counter("cpr_pipeline_ungated_swaps_total"),
            gate_rejected: obs.counter("cpr_pipeline_gate_rejected_total"),
            panics: obs.counter("cpr_pipeline_panics_total"),
            timeouts: obs.counter("cpr_pipeline_timeouts_total"),
            fit_errors: obs.counter("cpr_pipeline_fit_errors_total"),
            corrupt_installs: obs.counter("cpr_pipeline_corrupt_installs_total"),
            lost_races: obs.counter("cpr_pipeline_lost_races_total"),
            retries: obs.counter("cpr_pipeline_retries_total"),
            deferred: obs.counter("cpr_pipeline_deferred_total"),
            dropped_jobs: obs.counter("cpr_pipeline_dropped_jobs_total"),
            orphaned: obs.counter("cpr_pipeline_orphaned_total"),
            wal_appends: obs.counter("cpr_pipeline_wal_appends_total"),
            wal_append_failed: obs.counter("cpr_pipeline_wal_append_failed_total"),
            persisted: obs.counter("cpr_pipeline_persisted_total"),
            persist_failed: obs.counter("cpr_pipeline_persist_failed_total"),
            replayed: obs.counter("cpr_pipeline_replayed_total"),
            compacted: obs.counter("cpr_pipeline_compacted_total"),
        }
    }
}

struct Shared {
    registry: Arc<ModelRegistry>,
    cfg: PipelineConfig,
    faults: FaultInjector,
    /// Durability: snapshot store + telemetry WAL. `None` runs the
    /// pipeline memory-only (the pre-durability behavior, bit for bit).
    store: Option<Arc<FleetStore>>,
    /// Zero point of the pipeline's logical clock (breaker schedule,
    /// retry deadlines, staleness).
    epoch: Instant,
    state: Mutex<PipeState>,
    /// Signaled when work arrives or shutdown begins.
    work: Condvar,
    /// Signaled when a job reaches a terminal state (for `wait_idle`).
    done: Condvar,
    next_job: AtomicU64,
    counters: Counters,
    /// Wall-clock refit duration (the fit itself, gated or not).
    refit_us: Histogram,
    /// Point-in-time levels, republished whenever they change under the
    /// state lock.
    queue_depth: Gauge,
    in_flight_gauge: Gauge,
}

impl Shared {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn lock(&self) -> MutexGuard<'_, PipeState> {
        self.state.lock().expect("pipeline state poisoned")
    }

    /// Republish the queue/in-flight gauges from the locked state. Call
    /// before releasing the lock at any site that moved jobs.
    fn publish_gauges(&self, st: &PipeState) {
        self.queue_depth.set(st.queue.len() as i64);
        self.in_flight_gauge.set(st.in_flight.len() as i64);
    }

    /// Record a breaker failure, tracing the closed→open transition.
    fn breaker_failure(&self, t: &mut Tracked, id: &ModelId, now: Duration) {
        let before = t.breaker.state();
        t.breaker.record_failure(now);
        if before != BreakerState::Open && t.breaker.state() == BreakerState::Open {
            self.registry
                .obs()
                .events()
                .record(EventKind::BreakerTrip, id.to_string());
        }
    }

    /// Record a breaker success, tracing the reopen→closed transition.
    fn breaker_success(&self, t: &mut Tracked, id: &ModelId) {
        let before = t.breaker.state();
        t.breaker.record_success();
        if before != BreakerState::Closed && t.breaker.state() == BreakerState::Closed {
            self.registry
                .obs()
                .events()
                .record(EventKind::BreakerClose, id.to_string());
        }
    }
}

/// How one refit attempt ended (before terminal bookkeeping).
enum Attempt {
    /// Candidate fit, gated, swapped. Carries the new committed trainer,
    /// whether the gate was vacuous (empty holdout), and the swapped
    /// model's clean wire bytes (what a post-swap persist writes —
    /// exactly what the registry now serves).
    Swapped {
        trainer: Box<StreamingCpr>,
        ungated: bool,
        bytes: Vec<u8>,
    },
    /// Candidate lost the holdout gate — terminal, data absorbed.
    GateRejected,
    /// Retryable failures.
    Panicked,
    TimedOut,
    FitError,
    CorruptInstall,
    LostRace,
    /// The model vanished (registry entry or tracking table) — job
    /// abandoned.
    Orphaned,
}

/// The background refit-and-swap subsystem over a shared
/// [`ModelRegistry`]. See the module docs for the failure-containment
/// contract. Dropping the pipeline stops the workers (queued jobs are
/// abandoned); the registry keeps serving whatever was last installed.
pub struct RefitPipeline {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl RefitPipeline {
    /// Start `cfg.workers` refit workers over `registry`.
    pub fn new(registry: Arc<ModelRegistry>, cfg: PipelineConfig) -> Self {
        Self::with_parts(registry, cfg, FaultInjector::none(), None)
    }

    /// Start a pipeline with a fault injector armed (tests; the injector
    /// is shared, so faults can also be armed after construction).
    pub fn with_faults(
        registry: Arc<ModelRegistry>,
        cfg: PipelineConfig,
        faults: FaultInjector,
    ) -> Self {
        Self::with_parts(registry, cfg, faults, None)
    }

    /// Start a pipeline with a durability store attached: every accepted
    /// telemetry batch is write-ahead logged before it queues, and every
    /// gated swap is persisted to the snapshot store (then its WAL
    /// entries compacted). Store failures degrade — counted, never fatal
    /// to serving or refitting.
    pub fn with_store(
        registry: Arc<ModelRegistry>,
        cfg: PipelineConfig,
        store: Arc<FleetStore>,
    ) -> Self {
        Self::with_parts(registry, cfg, FaultInjector::none(), Some(store))
    }

    /// Store and fault injector together (crash-matrix tests).
    pub fn with_store_and_faults(
        registry: Arc<ModelRegistry>,
        cfg: PipelineConfig,
        store: Arc<FleetStore>,
        faults: FaultInjector,
    ) -> Self {
        Self::with_parts(registry, cfg, faults, Some(store))
    }

    fn with_parts(
        registry: Arc<ModelRegistry>,
        cfg: PipelineConfig,
        faults: FaultInjector,
        store: Option<Arc<FleetStore>>,
    ) -> Self {
        // Everything in the stack reports into the registry's hub — the
        // store included, so WAL/snapshot activity shows up on the same
        // `/metrics` page as the serving and refit counters.
        if let Some(store) = &store {
            store.attach_obs(registry.obs().clone());
        }
        let obs = registry.obs().clone();
        let shared = Arc::new(Shared {
            counters: Counters::new(&obs),
            refit_us: obs.histogram("cpr_pipeline_refit_us"),
            queue_depth: obs.gauge("cpr_pipeline_queue_depth"),
            in_flight_gauge: obs.gauge("cpr_pipeline_in_flight"),
            registry,
            cfg,
            faults,
            store,
            epoch: Instant::now(),
            state: Mutex::new(PipeState {
                queue: VecDeque::new(),
                in_flight: HashSet::new(),
                tracked: HashMap::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            next_job: AtomicU64::new(0),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("cpr-refit-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn refit worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// The registry this pipeline installs into.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.shared.registry
    }

    /// The attached durability store, if any.
    pub fn store(&self) -> Option<&Arc<FleetStore>> {
        self.shared.store.as_ref()
    }

    /// Track `id`: install the trainer's current model as the serving
    /// baseline and start accepting telemetry for it. Re-tracking an id
    /// replaces its trainer and drops its queued jobs.
    pub fn track(&self, id: ModelId, trainer: StreamingCpr) {
        self.shared
            .registry
            .insert(id.clone(), trainer.model().clone());
        let mut st = self.shared.lock();
        st.queue.retain(|j| j.id != id);
        st.tracked
            .insert(id, Tracked::new(trainer, self.shared.cfg.breaker, None));
    }

    /// Track a model recovered by [`ModelRegistry::restore`] **without**
    /// touching its registry entry: the restored durable plan keeps
    /// serving; `trainer` (typically [`StreamingCpr::resume`] on the
    /// restored model) only defines where refits warm-start. The model's
    /// durable generation is taken from the attached store's snapshot
    /// index when it holds this id.
    pub fn track_restored(&self, id: ModelId, trainer: StreamingCpr) {
        let durable_gen = self.shared.store.as_deref().and_then(|s| {
            s.snapshots()
                .keys()
                .contains(&id.store_key())
                .then(|| s.snapshots().generation())
        });
        let mut st = self.shared.lock();
        st.queue.retain(|j| j.id != id);
        st.tracked.insert(
            id,
            Tracked::new(trainer, self.shared.cfg.breaker, durable_gen),
        );
    }

    /// Stop tracking `id` and drop its queued jobs. The registry entry is
    /// left serving its last-good plan (graceful degradation, not an
    /// outage). Returns whether the id was tracked.
    pub fn untrack(&self, id: &ModelId) -> bool {
        let mut st = self.shared.lock();
        st.queue.retain(|j| &j.id != id);
        st.tracked.remove(id).is_some()
    }

    /// Submit a telemetry batch for a tracked model. Non-finite or
    /// non-positive measurements, non-finite parameters, and
    /// wrong-dimension configurations are quarantined (counted, not
    /// fatal). A full queue engages the shed policy: `RejectNewest`
    /// returns [`RegistryError::QueueFull`] (backpressure), `DropOldest`
    /// evicts the oldest queued batch for this model.
    /// When a store is attached, the accepted (post-quarantine) batch is
    /// appended to the telemetry WAL **before** it queues — durable
    /// first, scheduled second — so a crash between acceptance and the
    /// refit's persisted swap loses nothing: [`Self::replay`] re-submits
    /// it on the next start. A failed append degrades (counted in
    /// [`PipelineStats::wal_append_failed`], batch queued anyway).
    pub fn submit(&self, id: &ModelId, batch: &Dataset) -> Result<SubmitReceipt, RegistryError> {
        let samples: Vec<(Vec<f64>, f64)> = batch.iter().map(|(x, y)| (x.to_vec(), y)).collect();
        self.submit_samples(id, samples, None)
    }

    /// Shared core of [`Self::submit`] and [`Self::replay`]. A replayed
    /// batch carries its original WAL sequence in `replay_seq` and is
    /// *not* re-appended (its entry is already on the medium).
    fn submit_samples(
        &self,
        id: &ModelId,
        mut samples: Vec<(Vec<f64>, f64)>,
        replay_seq: Option<u64>,
    ) -> Result<SubmitReceipt, RegistryError> {
        let shared = &self.shared;
        let index = shared.next_job.fetch_add(1, Ordering::Relaxed);
        shared.counters.submitted.inc();
        shared.faults.take_poison(index, &mut samples);

        let mut st = shared.lock();
        let Some(tracked) = st.tracked.get(id) else {
            return Err(RegistryError::Untracked(id.clone()));
        };
        let dim = tracked.trainer.model().space().dim();
        let before = samples.len();
        samples.retain(|(x, y)| {
            x.len() == dim && x.iter().all(|v| v.is_finite()) && y.is_finite() && *y > 0.0
        });
        let quarantined = before - samples.len();
        shared.counters.quarantined.add(quarantined as u64);
        if samples.is_empty() {
            return Ok(SubmitReceipt {
                job: index,
                accepted: 0,
                quarantined,
                shed: 0,
            });
        }

        let mut shed = 0;
        if tracked.queued >= shared.cfg.queue_capacity {
            match shared.cfg.shed {
                ShedPolicy::RejectNewest => {
                    shared.counters.shed.inc();
                    shared
                        .registry
                        .obs()
                        .events()
                        .record(EventKind::Shed, format!("pipeline reject {id}"));
                    return Err(RegistryError::QueueFull(id.clone()));
                }
                ShedPolicy::DropOldest => {
                    if let Some(pos) = st.queue.iter().position(|j| &j.id == id) {
                        let evicted = st.queue.remove(pos).expect("position just found");
                        let t = st
                            .tracked
                            .get_mut(id)
                            .expect("tracked entry vanished under lock");
                        t.queued -= 1;
                        // The evicted batch is deliberately lost; its WAL
                        // entry is redundant and compacts at the next
                        // persist (until then a crash resurrects it —
                        // conservative, not wrong).
                        if let Some(seq) = evicted.wal_seq {
                            t.pending_compaction.push(seq);
                        }
                        shared.counters.shed.inc();
                        shared
                            .registry
                            .obs()
                            .events()
                            .record(EventKind::Shed, format!("pipeline evict {id}"));
                        shed = 1;
                    }
                }
            }
        }
        let accepted = samples.len();
        // Write-ahead: the batch hits the WAL before the queue (under the
        // state lock, so log order is admission order). Only then can the
        // crash story hold — everything queued is either durable in the
        // log or explicitly counted as not.
        let wal_seq = match replay_seq {
            Some(seq) => Some(seq),
            None => shared.store.as_deref().and_then(|store| {
                let rows: Vec<Vec<f64>> = samples
                    .iter()
                    .map(|(x, y)| x.iter().copied().chain(std::iter::once(*y)).collect())
                    .collect();
                match store.wal().append(&id.store_key(), index, &rows) {
                    Ok(()) => {
                        shared.counters.wal_appends.inc();
                        Some(index)
                    }
                    Err(_) => {
                        shared.counters.wal_append_failed.inc();
                        None
                    }
                }
            }),
        };
        st.queue.push_back(Job {
            id: id.clone(),
            index,
            attempt: 0,
            batch: samples,
            split: false,
            not_before: Duration::ZERO,
            wal_seq,
        });
        st.tracked
            .get_mut(id)
            .expect("tracked entry vanished under lock")
            .queued += 1;
        shared.publish_gauges(&st);
        drop(st);
        shared.work.notify_one();
        Ok(SubmitReceipt {
            job: index,
            accepted,
            quarantined,
            shed,
        })
    }

    /// Re-submit un-absorbed write-ahead telemetry after a restart: the
    /// valid prefix of the WAL (a torn tail from a mid-append crash is
    /// truncated, not an error) is fed back through the normal submit
    /// path under each entry's original sequence number. Entries for
    /// untracked models are left in the log and counted as orphaned;
    /// entries refused by a full queue also stay in the log (they will
    /// replay again next start). Replayed batches compact away like live
    /// ones once a gated swap persists.
    ///
    /// Call after [`ModelRegistry::restore`] + [`Self::track_restored`],
    /// before accepting live traffic. Requires an attached store.
    pub fn replay(&self) -> Result<ReplayReport, RegistryError> {
        let store = self
            .shared
            .store
            .clone()
            .expect("replay requires a pipeline built with_store");
        let log = store.wal().replay()?;
        if log.torn {
            // Trim the torn tail so future appends extend valid history.
            store.wal().truncate_to_valid()?;
        }
        let mut report = ReplayReport {
            replayed: 0,
            orphaned: 0,
            rejected: 0,
            torn: log.torn,
        };
        for entry in log.entries {
            let Some(id) = ModelId::from_store_key(&entry.key) else {
                report.orphaned += 1;
                continue;
            };
            let samples: Vec<(Vec<f64>, f64)> = entry
                .samples
                .iter()
                .filter(|row| !row.is_empty())
                .map(|row| (row[..row.len() - 1].to_vec(), row[row.len() - 1]))
                .collect();
            match self.submit_samples(&id, samples, Some(entry.seq)) {
                Ok(_) => {
                    self.shared.counters.replayed.inc();
                    report.replayed += 1;
                }
                Err(RegistryError::Untracked(_)) => report.orphaned += 1,
                Err(RegistryError::QueueFull(_)) => report.rejected += 1,
                Err(e) => return Err(e),
            }
        }
        Ok(report)
    }

    /// Block until no job is queued, scheduled for retry, or in flight.
    /// Covers breaker cooldowns and retry backoffs: a deferred job counts
    /// as pending until it terminally resolves.
    pub fn wait_idle(&self) {
        let mut st = self.shared.lock();
        while !st.queue.is_empty() || !st.in_flight.is_empty() {
            st = self
                .shared
                .done
                .wait_timeout(st, Duration::from_millis(20))
                .expect("pipeline state poisoned")
                .0;
        }
    }

    /// Lifetime counters plus a point-in-time queue snapshot.
    pub fn stats(&self) -> PipelineStats {
        let c = &self.shared.counters;
        let st = self.shared.lock();
        PipelineStats {
            submitted: c.submitted.get(),
            quarantined: c.quarantined.get(),
            shed: c.shed.get(),
            swapped: c.swapped.get(),
            ungated_swaps: c.ungated_swaps.get(),
            gate_rejected: c.gate_rejected.get(),
            panics: c.panics.get(),
            timeouts: c.timeouts.get(),
            fit_errors: c.fit_errors.get(),
            corrupt_installs: c.corrupt_installs.get(),
            lost_races: c.lost_races.get(),
            retries: c.retries.get(),
            deferred: c.deferred.get(),
            dropped_jobs: c.dropped_jobs.get(),
            orphaned: c.orphaned.get(),
            wal_appends: c.wal_appends.get(),
            wal_append_failed: c.wal_append_failed.get(),
            persisted: c.persisted.get(),
            persist_failed: c.persist_failed.get(),
            replayed: c.replayed.get(),
            compacted: c.compacted.get(),
            queued: st.queue.len(),
            in_flight: st.in_flight.len(),
            tracked: st.tracked.len(),
        }
    }

    /// Health snapshot for one tracked model; `None` if untracked.
    pub fn health(&self, id: &ModelId) -> Option<ModelHealth> {
        let now = self.shared.now();
        let st = self.shared.lock();
        let t = st.tracked.get(id)?;
        Some(ModelHealth {
            breaker: t.breaker.state(),
            consecutive_failures: t.breaker.consecutive_failures(),
            queued: t.queued,
            holdout_reserved: t.holdout.len(),
            swaps: t.swaps,
            gate_rejections: t.gate_rejections,
            last_swap_age: t.last_swap.map(|at| now.saturating_sub(at)),
            durable_generation: t.durable_gen,
        })
    }

    /// The committed trainer's current model for `id` — what the registry
    /// serves after the last gated swap (the invariant the fault tests
    /// pin bitwise).
    pub fn tracked_model(&self, id: &ModelId) -> Option<CprModel> {
        let st = self.shared.lock();
        st.tracked.get(id).map(|t| t.trainer.model().clone())
    }

    /// Stop the workers. Queued jobs are abandoned; the registry keeps
    /// serving. (Also runs on drop.)
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.lock().shutdown = true;
        self.shared.work.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for RefitPipeline {
    fn drop(&mut self) {
        self.stop();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let Some(mut job) = next_job(shared) else {
            return; // shutdown
        };
        match admit(shared, &mut job) {
            Admission::Deferred => {}
            Admission::Orphaned => {
                finish_job(shared, job, Attempt::Orphaned);
            }
            Admission::Run {
                trainer,
                holdout,
                train,
            } => {
                let outcome = fit_gate_install(shared, &job, *trainer, &holdout, &train);
                // A swapped job with a store attached stays in flight
                // through its persist, which runs store IO outside the
                // state lock; `wait_idle` covers it.
                if let Some(task) = finish_job(shared, job, outcome) {
                    run_persist(shared, task);
                }
            }
        }
    }
}

/// Deferred work of a gated swap: write the swapped model to the
/// snapshot store and compact the WAL entries its data made redundant.
/// Runs on the worker thread *outside* the state lock (store IO can be a
/// real fsync).
struct PersistTask {
    id: ModelId,
    bytes: Vec<u8>,
    /// WAL sequences reflected in `bytes` (this job's batch plus every
    /// previously absorbed/abandoned batch awaiting compaction).
    seqs: Vec<u64>,
}

fn run_persist(shared: &Shared, task: PersistTask) {
    let store = shared.store.as_deref().expect("persist task without store");
    let key = task.id.store_key();
    let persisted = store.snapshots().persist(&key, &task.bytes);
    if let Ok(generation) = &persisted {
        shared.counters.persisted.inc();
        // Best-effort: a failed (or crashed) compaction leaves redundant
        // entries whose replay is idempotent — duplicate absorption
        // cannot move a sum/count mean.
        if !task.seqs.is_empty() {
            if let Ok(removed) = store.wal().compact(&key, &task.seqs) {
                shared.counters.compacted.add(removed as u64);
            }
        }
        let mut st = shared.lock();
        if let Some(t) = st.tracked.get_mut(&task.id) {
            t.durable_gen = Some(*generation);
        }
        st.in_flight.remove(&task.id);
        shared.publish_gauges(&st);
    } else {
        shared.counters.persist_failed.inc();
        let mut st = shared.lock();
        if let Some(t) = st.tracked.get_mut(&task.id) {
            // Not durable: these batches must survive in the WAL until a
            // later persist succeeds (or a restart replays them).
            t.pending_compaction.extend(task.seqs);
        }
        st.in_flight.remove(&task.id);
        shared.publish_gauges(&st);
    }
    shared.work.notify_all();
    shared.done.notify_all();
}

/// Pop the first runnable job: past its `not_before`, model not already
/// in flight (per-model serialization is what makes the half-open probe
/// singular and the trainer commit race-free). Blocks until one exists or
/// shutdown.
fn next_job(shared: &Shared) -> Option<Job> {
    let mut st = shared.lock();
    loop {
        if st.shutdown {
            return None;
        }
        let now = shared.now();
        let ready = st
            .queue
            .iter()
            .position(|j| j.not_before <= now && !st.in_flight.contains(&j.id));
        if let Some(pos) = ready {
            let job = st.queue.remove(pos).expect("position just found");
            match st.tracked.get_mut(&job.id) {
                Some(t) => {
                    t.queued -= 1;
                    st.in_flight.insert(job.id.clone());
                    shared.publish_gauges(&st);
                    return Some(job);
                }
                None => {
                    // Untracked while queued (should have been purged;
                    // belt and braces): abandon.
                    shared.counters.orphaned.inc();
                    shared.publish_gauges(&st);
                    shared.done.notify_all();
                    continue;
                }
            }
        }
        // Nothing runnable: sleep until the earliest scheduled wake-up,
        // bounded so in-flight completions and shutdowns are never missed.
        let wait = st
            .queue
            .iter()
            .map(|j| j.not_before.saturating_sub(now))
            .min()
            .filter(|d| !d.is_zero())
            .unwrap_or(Duration::from_millis(50))
            .min(Duration::from_millis(50));
        st = shared
            .work
            .wait_timeout(st, wait)
            .expect("pipeline state poisoned")
            .0;
    }
}

/// What the admission step (breaker + holdout split) decided.
enum Admission {
    /// Breaker open: the job went back on the queue, scheduled for the
    /// breaker's probe time, no attempt consumed. `in_flight` cleared.
    Deferred,
    /// The model is no longer tracked.
    Orphaned,
    /// Cleared to refit: a clone of the committed trainer, a snapshot of
    /// the holdout slice, and the training dataset.
    Run {
        trainer: Box<StreamingCpr>,
        holdout: Vec<(Vec<f64>, f64)>,
        train: Dataset,
    },
}

/// Admission for a picked-up job, under the state lock: consult the
/// circuit breaker, carve out the holdout slice (first pickup only —
/// retries must not donate twice), and snapshot what the unlocked fit
/// needs.
fn admit(shared: &Shared, job: &mut Job) -> Admission {
    let mut st = shared.lock();
    let now = shared.now();
    let Some(t) = st.tracked.get_mut(&job.id) else {
        return Admission::Orphaned;
    };
    if !t.breaker.allow(now) {
        // Re-queue at the breaker's probe time; no attempt consumed.
        shared.counters.deferred.inc();
        let requeue = Job {
            id: job.id.clone(),
            index: job.index,
            attempt: job.attempt,
            batch: std::mem::take(&mut job.batch),
            split: job.split,
            not_before: t.breaker.retry_at().unwrap_or(now),
            wal_seq: job.wal_seq,
        };
        t.queued += 1;
        st.in_flight.remove(&requeue.id);
        st.queue.push_back(requeue);
        shared.publish_gauges(&st);
        drop(st);
        shared.work.notify_all();
        shared.done.notify_all();
        return Admission::Deferred;
    }
    if !job.split {
        job.split = true;
        let k = shared.cfg.holdout_every();
        if k > 0 {
            let mut train = Vec::with_capacity(job.batch.len());
            for (i, sample) in job.batch.drain(..).enumerate() {
                // The first sample never lands here (i+1 ≥ k ≥ 2), so a
                // non-empty batch always keeps at least one train sample.
                if (i + 1) % k == 0 {
                    if t.holdout.len() >= shared.cfg.holdout_cap {
                        t.holdout.pop_front();
                    }
                    t.holdout.push_back(sample);
                } else {
                    train.push(sample);
                }
            }
            job.batch = train;
        }
    }
    Admission::Run {
        trainer: Box::new(t.trainer.clone()),
        holdout: t.holdout.iter().cloned().collect(),
        train: Dataset::from_pairs(job.batch.iter().cloned()),
    }
}

fn fit_gate_install(
    shared: &Shared,
    job: &Job,
    trainer: StreamingCpr,
    holdout: &[(Vec<f64>, f64)],
    train: &Dataset,
) -> Attempt {
    let cfg = &shared.cfg;
    // Injected timeout: the fit is treated as having hung past the
    // deadline (skipped entirely — a real hang would be abandoned).
    if shared.faults.take_timeout(job.index, job.attempt) {
        return Attempt::TimedOut;
    }
    let started = Instant::now();
    let fit = {
        let faults = shared.faults.clone();
        let (index, attempt, sweeps) = (job.index, job.attempt, cfg.sweep_budget);
        let mut candidate = trainer;
        catch_unwind(AssertUnwindSafe(move || {
            if faults.take_fit_panic(index, attempt) {
                panic!("injected refit panic (job {index} attempt {attempt})");
            }
            candidate.update(train, sweeps).map(|_| candidate)
        }))
    };
    shared.refit_us.record_duration(started.elapsed());
    let candidate = match fit {
        Err(_) => return Attempt::Panicked,
        Ok(Err(_)) => return Attempt::FitError,
        Ok(Ok(candidate)) => {
            if started.elapsed() > cfg.deadline {
                return Attempt::TimedOut;
            }
            candidate
        }
    };

    // Quality gate: candidate vs live plan on the reserved holdout.
    let Some(live) = shared.registry.plan(&job.id) else {
        return Attempt::Orphaned;
    };
    let ungated = holdout.is_empty();
    if !ungated
        && !gate_passes(
            holdout,
            &candidate.model().shared_plan(),
            &live,
            cfg.gate_slack,
        )
    {
        return Attempt::GateRejected;
    }

    // Install through the wire format — the same parse a cold load gets,
    // so a corrupt candidate is rejected, not served.
    let clean = serialize::to_bytes(candidate.model()).as_ref().to_vec();
    let mut bytes = clean.clone();
    shared.faults.corrupt(job.index, job.attempt, &mut bytes);
    let loaded = match serialize::from_bytes(&bytes) {
        Ok(m) => m,
        Err(_) => return Attempt::CorruptInstall,
    };
    match shared.registry.swap_if_current(&job.id, loaded, &live) {
        SwapOutcome::Swapped => Attempt::Swapped {
            trainer: Box::new(candidate),
            ungated,
            bytes: clean,
        },
        SwapOutcome::Raced => Attempt::LostRace,
        SwapOutcome::Missing => Attempt::Orphaned,
    }
}

/// Candidate-vs-live residual comparison on the holdout slice.
fn gate_passes(
    holdout: &[(Vec<f64>, f64)],
    candidate: &PredictPlan,
    live: &PredictPlan,
    slack: f64,
) -> bool {
    let pairs = || holdout.iter().map(|(x, y)| (x.as_slice(), *y));
    let cand =
        holdout_metrics(|x| candidate.predict(x), pairs()).expect("holdout checked non-empty");
    let live = holdout_metrics(|x| live.predict(x), pairs()).expect("holdout checked non-empty");
    cand.mlogq <= live.mlogq * (1.0 + slack) + 1e-12
}

/// Terminal bookkeeping for one attempt: breaker, counters, retry
/// scheduling, trainer commit/absorb. Always signals both condvars.
/// Clears `in_flight` — except when it returns a [`PersistTask`] (gated
/// swap with a store attached): the job then stays in flight until
/// [`run_persist`] completes it.
fn finish_job(shared: &Shared, mut job: Job, outcome: Attempt) -> Option<PersistTask> {
    let now = shared.now();
    let c = &shared.counters;
    let job_id = job.id.clone();
    let mut task = None;
    let mut st = shared.lock();
    match outcome {
        Attempt::Swapped {
            trainer,
            ungated,
            bytes,
        } => {
            c.swapped.inc();
            if ungated {
                c.ungated_swaps.inc();
            }
            if let Some(t) = st.tracked.get_mut(&job.id) {
                t.trainer = *trainer;
                t.swaps += 1;
                t.last_swap = Some(now);
                shared.breaker_success(t, &job_id);
                if shared.store.is_some() {
                    // The swapped model reflects this batch and everything
                    // absorbed before it; a successful persist makes all
                    // those WAL entries redundant.
                    let mut seqs = std::mem::take(&mut t.pending_compaction);
                    seqs.extend(job.wal_seq);
                    task = Some(PersistTask {
                        id: job.id.clone(),
                        bytes,
                        seqs,
                    });
                }
            }
        }
        Attempt::GateRejected => {
            // Terminal, not retried: refitting the same data would lose
            // the same gate.
            c.gate_rejected.inc();
            shared
                .registry
                .obs()
                .events()
                .record(EventKind::GateReject, job_id.to_string());
            if let Some(t) = st.tracked.get_mut(&job.id) {
                t.gate_rejections += 1;
                shared.breaker_failure(t, &job_id, now);
                // Keep the data: statistics advance, factors don't — the
                // next (gated) refit trains on everything seen.
                let batch = Dataset::from_pairs(job.batch.drain(..));
                let _ = t.trainer.absorb(&batch);
                // Absorbed into the committed trainer: the WAL entry
                // becomes redundant at the next persisted swap.
                t.pending_compaction.extend(job.wal_seq);
            }
        }
        Attempt::Panicked | Attempt::TimedOut | Attempt::FitError | Attempt::CorruptInstall => {
            match &outcome {
                Attempt::Panicked => c.panics.inc(),
                Attempt::TimedOut => c.timeouts.inc(),
                Attempt::FitError => c.fit_errors.inc(),
                Attempt::CorruptInstall => c.corrupt_installs.inc(),
                _ => unreachable!(),
            }
            let tracked = st.tracked.contains_key(&job.id);
            if tracked {
                if let Some(t) = st.tracked.get_mut(&job.id) {
                    shared.breaker_failure(t, &job_id, now);
                }
                retry_or_drop(shared, &mut st, job, now);
            } else {
                c.orphaned.inc();
            }
        }
        Attempt::LostRace => {
            // No breaker penalty: nothing is wrong with this model, the
            // candidate just gated against a plan that moved. Retry
            // re-gates against the new live plan.
            c.lost_races.inc();
            if st.tracked.contains_key(&job.id) {
                retry_or_drop(shared, &mut st, job, now);
            } else {
                c.orphaned.inc();
            }
        }
        Attempt::Orphaned => c.orphaned.inc(),
    }
    if task.is_none() {
        st.in_flight.remove(&job_id);
    }
    shared.publish_gauges(&st);
    drop(st);
    shared.work.notify_all();
    shared.done.notify_all();
    task
}

/// Re-queue `job` with exponential backoff, or drop it once retries are
/// exhausted. Caller holds the state lock and already cleared
/// `in_flight`.
fn retry_or_drop(shared: &Shared, st: &mut PipeState, mut job: Job, now: Duration) {
    let cfg = &shared.cfg;
    if job.attempt < cfg.max_retries {
        shared.counters.retries.inc();
        job.not_before = now + cfg.backoff(job.attempt);
        job.attempt += 1;
        if let Some(t) = st.tracked.get_mut(&job.id) {
            t.queued += 1;
        }
        st.queue.push_back(job);
    } else {
        shared.counters.dropped_jobs.inc();
        // The batch data is lost by policy; its WAL entry is redundant
        // and compacts at the next persist.
        if let Some(t) = st.tracked.get_mut(&job.id) {
            t.pending_compaction.extend(job.wal_seq);
        }
    }
}
