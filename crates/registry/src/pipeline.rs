//! Background refit-and-swap: the self-healing loop that keeps a served
//! fleet current under continuous telemetry.
//!
//! The paper's deployment story is a performance model fed by production
//! measurements; this module is the part that survives production.
//! Telemetry batches are [`RefitPipeline::submit`]ted per model into a
//! bounded queue (explicit shed policy, NaN/Inf quarantine), refit on a
//! small worker pool through the existing [`StreamingCpr`] warm-start
//! path, and **quality-gated** before serving: a candidate must match the
//! live plan's residuals on a reserved holdout slice, or it is discarded
//! and the last-good plan keeps serving. Every failure mode is contained:
//!
//! * **Panic** in a fit — caught (`catch_unwind`); the candidate clone is
//!   discarded, the committed trainer is untouched.
//! * **Deadline** blow-through — the candidate is discarded after the
//!   fact (the sweep budget bounds the work; the deadline bounds what a
//!   pathological batch can cost before being declared failed).
//! * **Corrupt candidate bytes** — candidates are installed through the
//!   same wire parse as a cold load; a parse failure rejects the install.
//! * **Regression** — the holdout gate refuses candidates whose MLogQ
//!   worsens beyond the configured slack.
//! * **Repeated failure** — deterministic exponential-backoff retries up
//!   to a budget, and a per-model circuit breaker (closed → open →
//!   half-open, [`crate::CircuitBreaker`]) that stops burning workers on
//!   a model that keeps failing.
//!
//! Through all of it the registry never stops serving: readers see the
//! last successfully gated plan, bitwise-stable, until the instant an
//! atomic [`ModelRegistry::swap_if_current`] publishes a better one. A
//! [`FaultInjector`] threads through every failure point so each of these
//! claims is deterministically testable (`tests/fault_injection.rs`).
//!
//! Data is not lost on rejection: a gate-rejected batch is absorbed into
//! the committed trainer's statistics ([`StreamingCpr::absorb`] — no
//! sweeps, factors untouched) so the next refit trains on it. Batches
//! dropped by shedding or retry exhaustion *are* lost, and counted.

use crate::error::RegistryError;
use crate::fault::FaultInjector;
use crate::health::{BreakerConfig, CircuitBreaker, ModelHealth};
use crate::id::ModelId;
use crate::registry::{ModelRegistry, SwapOutcome};
use cpr_core::{holdout_metrics, serialize, CprModel, Dataset, PredictPlan, StreamingCpr};
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What happens to a newly submitted batch when a model's queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Refuse the new batch with [`RegistryError::QueueFull`] —
    /// backpressure to the producer, queued telemetry wins.
    RejectNewest,
    /// Evict the oldest queued batch for that model to admit the new one —
    /// freshest telemetry wins, the eviction is counted in
    /// [`PipelineStats::shed`].
    DropOldest,
}

/// Tuning for a [`RefitPipeline`]. The defaults are sized for "a few
/// dozen models, telemetry every few seconds"; every knob exists because
/// a test or an operator needs to turn it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Refit worker threads. `0` is legal (nothing drains — useful for
    /// tests that inspect the queue, useless in production).
    pub workers: usize,
    /// Max queued batches per model before the shed policy engages.
    /// Retries re-enter the queue outside this bound (they were already
    /// admitted once).
    pub queue_capacity: usize,
    /// What to do with a batch that finds the queue full.
    pub shed: ShedPolicy,
    /// ALS sweeps per refit job — the work budget.
    pub sweep_budget: usize,
    /// Wall-clock budget per fit; a slower fit is declared failed.
    pub deadline: Duration,
    /// Fraction of each batch reserved for the holdout gate (never
    /// trained on). `0.0` disables reservation — refits then swap
    /// ungated.
    pub holdout_frac: f64,
    /// Max holdout samples retained per model (oldest evicted first).
    pub holdout_cap: usize,
    /// Gate tolerance: a candidate passes iff its holdout MLogQ is at
    /// most `(1 + gate_slack) ×` the live plan's. Negative slack demands
    /// strict improvement (and `<= -1.0` rejects everything — a test
    /// lever).
    pub gate_slack: f64,
    /// Retries after a failed attempt (panic, timeout, corrupt install,
    /// lost swap race). Gate rejections are terminal — refitting the same
    /// data would lose the same gate.
    pub max_retries: u32,
    /// Backoff before retry `n` (0-based) is `retry_backoff · 2ⁿ`…
    pub retry_backoff: Duration,
    /// …capped here.
    pub retry_backoff_max: Duration,
    /// Per-model circuit breaker tuning.
    pub breaker: BreakerConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 4,
            shed: ShedPolicy::RejectNewest,
            sweep_budget: 8,
            deadline: Duration::from_secs(5),
            holdout_frac: 0.2,
            holdout_cap: 256,
            gate_slack: 0.05,
            max_retries: 2,
            retry_backoff: Duration::from_millis(10),
            retry_backoff_max: Duration::from_secs(1),
            breaker: BreakerConfig::default(),
        }
    }
}

impl PipelineConfig {
    /// Reserve every `k`-th sample for the holdout; 0 disables.
    fn holdout_every(&self) -> usize {
        if self.holdout_frac <= 0.0 {
            0
        } else {
            // frac ≥ 0.5 clamps to "every 2nd": the first sample of a
            // batch always trains, so a job can never be all-holdout.
            ((1.0 / self.holdout_frac).round() as usize).max(2)
        }
    }

    fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u64 << attempt.min(32);
        self.retry_backoff
            .checked_mul(u32::try_from(factor).unwrap_or(u32::MAX))
            .unwrap_or(self.retry_backoff_max)
            .min(self.retry_backoff_max)
    }
}

/// What [`RefitPipeline::submit`] did with a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitReceipt {
    /// Job index assigned to this submission — the coordinate fault
    /// injection and logs refer to. Every submission consumes an index,
    /// including ones that queue nothing.
    pub job: u64,
    /// Samples accepted after quarantine.
    pub accepted: usize,
    /// Samples quarantined (non-finite parameter or measurement,
    /// non-positive measurement, wrong dimension).
    pub quarantined: usize,
    /// Queued batches evicted to admit this one (`DropOldest` only).
    pub shed: usize,
}

/// Counters over the pipeline's lifetime plus a point-in-time queue view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineStats {
    /// Batches submitted (including fully quarantined ones).
    pub submitted: u64,
    /// Samples quarantined at submission.
    pub quarantined: u64,
    /// Batches shed (evicted under `DropOldest`, refused under
    /// `RejectNewest`).
    pub shed: u64,
    /// Candidates gated and hot-swapped into the registry.
    pub swapped: u64,
    /// Swaps that went through with an empty holdout (gate vacuous).
    pub ungated_swaps: u64,
    /// Candidates the quality gate refused.
    pub gate_rejected: u64,
    /// Fit panics contained.
    pub panics: u64,
    /// Fits that blew the deadline.
    pub timeouts: u64,
    /// Fit errors surfaced as `Result::Err` (not panics).
    pub fit_errors: u64,
    /// Candidate installs refused because the wire bytes failed to parse.
    pub corrupt_installs: u64,
    /// Swaps abandoned because another install won the race.
    pub lost_races: u64,
    /// Jobs re-queued for retry with backoff.
    pub retries: u64,
    /// Jobs deferred by an open circuit breaker.
    pub deferred: u64,
    /// Jobs dropped after exhausting retries (their batch data is lost).
    pub dropped_jobs: u64,
    /// Jobs abandoned because the model vanished from the registry or the
    /// tracking table mid-flight.
    pub orphaned: u64,
    /// Batches currently queued.
    pub queued: usize,
    /// Jobs currently being refit.
    pub in_flight: usize,
    /// Models currently tracked.
    pub tracked: usize,
}

struct Job {
    id: ModelId,
    index: u64,
    attempt: u32,
    /// Training samples (post-quarantine; post-holdout-split once a
    /// worker has picked the job up).
    batch: Vec<(Vec<f64>, f64)>,
    /// Whether the holdout slice was already carved out (first pickup
    /// does it; retries must not re-donate samples).
    split: bool,
    /// Logical time (since the pipeline epoch) before which no worker
    /// may run this job — retry backoff and breaker deferral.
    not_before: Duration,
}

struct Tracked {
    /// The committed trainer: advanced only by gated swaps (factors) and
    /// absorbed batches (statistics). Workers refit a clone.
    trainer: StreamingCpr,
    /// Reserved holdout samples, never trained on. Bounded ring.
    holdout: VecDeque<(Vec<f64>, f64)>,
    breaker: CircuitBreaker,
    queued: usize,
    swaps: u64,
    gate_rejections: u64,
    last_swap: Option<Duration>,
}

struct PipeState {
    queue: VecDeque<Job>,
    in_flight: HashSet<ModelId>,
    tracked: HashMap<ModelId, Tracked>,
    shutdown: bool,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    quarantined: AtomicU64,
    shed: AtomicU64,
    swapped: AtomicU64,
    ungated_swaps: AtomicU64,
    gate_rejected: AtomicU64,
    panics: AtomicU64,
    timeouts: AtomicU64,
    fit_errors: AtomicU64,
    corrupt_installs: AtomicU64,
    lost_races: AtomicU64,
    retries: AtomicU64,
    deferred: AtomicU64,
    dropped_jobs: AtomicU64,
    orphaned: AtomicU64,
}

impl Counters {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

struct Shared {
    registry: Arc<ModelRegistry>,
    cfg: PipelineConfig,
    faults: FaultInjector,
    /// Zero point of the pipeline's logical clock (breaker schedule,
    /// retry deadlines, staleness).
    epoch: Instant,
    state: Mutex<PipeState>,
    /// Signaled when work arrives or shutdown begins.
    work: Condvar,
    /// Signaled when a job reaches a terminal state (for `wait_idle`).
    done: Condvar,
    next_job: AtomicU64,
    counters: Counters,
}

impl Shared {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn lock(&self) -> MutexGuard<'_, PipeState> {
        self.state.lock().expect("pipeline state poisoned")
    }
}

/// How one refit attempt ended (before terminal bookkeeping).
enum Attempt {
    /// Candidate fit, gated, swapped. Carries the new committed trainer
    /// and whether the gate was vacuous (empty holdout).
    Swapped {
        trainer: Box<StreamingCpr>,
        ungated: bool,
    },
    /// Candidate lost the holdout gate — terminal, data absorbed.
    GateRejected,
    /// Retryable failures.
    Panicked,
    TimedOut,
    FitError,
    CorruptInstall,
    LostRace,
    /// The model vanished (registry entry or tracking table) — job
    /// abandoned.
    Orphaned,
}

/// The background refit-and-swap subsystem over a shared
/// [`ModelRegistry`]. See the module docs for the failure-containment
/// contract. Dropping the pipeline stops the workers (queued jobs are
/// abandoned); the registry keeps serving whatever was last installed.
pub struct RefitPipeline {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl RefitPipeline {
    /// Start `cfg.workers` refit workers over `registry`.
    pub fn new(registry: Arc<ModelRegistry>, cfg: PipelineConfig) -> Self {
        Self::with_faults(registry, cfg, FaultInjector::none())
    }

    /// Start a pipeline with a fault injector armed (tests; the injector
    /// is shared, so faults can also be armed after construction).
    pub fn with_faults(
        registry: Arc<ModelRegistry>,
        cfg: PipelineConfig,
        faults: FaultInjector,
    ) -> Self {
        let shared = Arc::new(Shared {
            registry,
            cfg,
            faults,
            epoch: Instant::now(),
            state: Mutex::new(PipeState {
                queue: VecDeque::new(),
                in_flight: HashSet::new(),
                tracked: HashMap::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            next_job: AtomicU64::new(0),
            counters: Counters::default(),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("cpr-refit-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn refit worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// The registry this pipeline installs into.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.shared.registry
    }

    /// Track `id`: install the trainer's current model as the serving
    /// baseline and start accepting telemetry for it. Re-tracking an id
    /// replaces its trainer and drops its queued jobs.
    pub fn track(&self, id: ModelId, trainer: StreamingCpr) {
        self.shared
            .registry
            .insert(id.clone(), trainer.model().clone());
        let mut st = self.shared.lock();
        st.queue.retain(|j| j.id != id);
        st.tracked.insert(
            id,
            Tracked {
                trainer,
                holdout: VecDeque::new(),
                breaker: CircuitBreaker::new(self.shared.cfg.breaker),
                queued: 0,
                swaps: 0,
                gate_rejections: 0,
                last_swap: None,
            },
        );
    }

    /// Stop tracking `id` and drop its queued jobs. The registry entry is
    /// left serving its last-good plan (graceful degradation, not an
    /// outage). Returns whether the id was tracked.
    pub fn untrack(&self, id: &ModelId) -> bool {
        let mut st = self.shared.lock();
        st.queue.retain(|j| &j.id != id);
        st.tracked.remove(id).is_some()
    }

    /// Submit a telemetry batch for a tracked model. Non-finite or
    /// non-positive measurements, non-finite parameters, and
    /// wrong-dimension configurations are quarantined (counted, not
    /// fatal). A full queue engages the shed policy: `RejectNewest`
    /// returns [`RegistryError::QueueFull`] (backpressure), `DropOldest`
    /// evicts the oldest queued batch for this model.
    pub fn submit(&self, id: &ModelId, batch: &Dataset) -> Result<SubmitReceipt, RegistryError> {
        let shared = &self.shared;
        let index = shared.next_job.fetch_add(1, Ordering::Relaxed);
        Counters::bump(&shared.counters.submitted);
        let mut samples: Vec<(Vec<f64>, f64)> =
            batch.iter().map(|(x, y)| (x.to_vec(), y)).collect();
        shared.faults.take_poison(index, &mut samples);

        let mut st = shared.lock();
        let Some(tracked) = st.tracked.get(id) else {
            return Err(RegistryError::Untracked(id.clone()));
        };
        let dim = tracked.trainer.model().space().dim();
        let before = samples.len();
        samples.retain(|(x, y)| {
            x.len() == dim && x.iter().all(|v| v.is_finite()) && y.is_finite() && *y > 0.0
        });
        let quarantined = before - samples.len();
        shared
            .counters
            .quarantined
            .fetch_add(quarantined as u64, Ordering::Relaxed);
        if samples.is_empty() {
            return Ok(SubmitReceipt {
                job: index,
                accepted: 0,
                quarantined,
                shed: 0,
            });
        }

        let mut shed = 0;
        if tracked.queued >= shared.cfg.queue_capacity {
            match shared.cfg.shed {
                ShedPolicy::RejectNewest => {
                    Counters::bump(&shared.counters.shed);
                    return Err(RegistryError::QueueFull(id.clone()));
                }
                ShedPolicy::DropOldest => {
                    if let Some(pos) = st.queue.iter().position(|j| &j.id == id) {
                        st.queue.remove(pos);
                        st.tracked
                            .get_mut(id)
                            .expect("tracked entry vanished under lock")
                            .queued -= 1;
                        Counters::bump(&shared.counters.shed);
                        shed = 1;
                    }
                }
            }
        }
        let accepted = samples.len();
        st.queue.push_back(Job {
            id: id.clone(),
            index,
            attempt: 0,
            batch: samples,
            split: false,
            not_before: Duration::ZERO,
        });
        st.tracked
            .get_mut(id)
            .expect("tracked entry vanished under lock")
            .queued += 1;
        drop(st);
        shared.work.notify_one();
        Ok(SubmitReceipt {
            job: index,
            accepted,
            quarantined,
            shed,
        })
    }

    /// Block until no job is queued, scheduled for retry, or in flight.
    /// Covers breaker cooldowns and retry backoffs: a deferred job counts
    /// as pending until it terminally resolves.
    pub fn wait_idle(&self) {
        let mut st = self.shared.lock();
        while !st.queue.is_empty() || !st.in_flight.is_empty() {
            st = self
                .shared
                .done
                .wait_timeout(st, Duration::from_millis(20))
                .expect("pipeline state poisoned")
                .0;
        }
    }

    /// Lifetime counters plus a point-in-time queue snapshot.
    pub fn stats(&self) -> PipelineStats {
        let c = &self.shared.counters;
        let st = self.shared.lock();
        PipelineStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            quarantined: c.quarantined.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            swapped: c.swapped.load(Ordering::Relaxed),
            ungated_swaps: c.ungated_swaps.load(Ordering::Relaxed),
            gate_rejected: c.gate_rejected.load(Ordering::Relaxed),
            panics: c.panics.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
            fit_errors: c.fit_errors.load(Ordering::Relaxed),
            corrupt_installs: c.corrupt_installs.load(Ordering::Relaxed),
            lost_races: c.lost_races.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            deferred: c.deferred.load(Ordering::Relaxed),
            dropped_jobs: c.dropped_jobs.load(Ordering::Relaxed),
            orphaned: c.orphaned.load(Ordering::Relaxed),
            queued: st.queue.len(),
            in_flight: st.in_flight.len(),
            tracked: st.tracked.len(),
        }
    }

    /// Health snapshot for one tracked model; `None` if untracked.
    pub fn health(&self, id: &ModelId) -> Option<ModelHealth> {
        let now = self.shared.now();
        let st = self.shared.lock();
        let t = st.tracked.get(id)?;
        Some(ModelHealth {
            breaker: t.breaker.state(),
            consecutive_failures: t.breaker.consecutive_failures(),
            queued: t.queued,
            holdout_reserved: t.holdout.len(),
            swaps: t.swaps,
            gate_rejections: t.gate_rejections,
            last_swap_age: t.last_swap.map(|at| now.saturating_sub(at)),
        })
    }

    /// The committed trainer's current model for `id` — what the registry
    /// serves after the last gated swap (the invariant the fault tests
    /// pin bitwise).
    pub fn tracked_model(&self, id: &ModelId) -> Option<CprModel> {
        let st = self.shared.lock();
        st.tracked.get(id).map(|t| t.trainer.model().clone())
    }

    /// Stop the workers. Queued jobs are abandoned; the registry keeps
    /// serving. (Also runs on drop.)
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.lock().shutdown = true;
        self.shared.work.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for RefitPipeline {
    fn drop(&mut self) {
        self.stop();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let Some(mut job) = next_job(shared) else {
            return; // shutdown
        };
        match admit(shared, &mut job) {
            Admission::Deferred => {}
            Admission::Orphaned => finish_job(shared, job, Attempt::Orphaned),
            Admission::Run {
                trainer,
                holdout,
                train,
            } => {
                let outcome = fit_gate_install(shared, &job, *trainer, &holdout, &train);
                finish_job(shared, job, outcome);
            }
        }
    }
}

/// Pop the first runnable job: past its `not_before`, model not already
/// in flight (per-model serialization is what makes the half-open probe
/// singular and the trainer commit race-free). Blocks until one exists or
/// shutdown.
fn next_job(shared: &Shared) -> Option<Job> {
    let mut st = shared.lock();
    loop {
        if st.shutdown {
            return None;
        }
        let now = shared.now();
        let ready = st
            .queue
            .iter()
            .position(|j| j.not_before <= now && !st.in_flight.contains(&j.id));
        if let Some(pos) = ready {
            let job = st.queue.remove(pos).expect("position just found");
            match st.tracked.get_mut(&job.id) {
                Some(t) => {
                    t.queued -= 1;
                    st.in_flight.insert(job.id.clone());
                    return Some(job);
                }
                None => {
                    // Untracked while queued (should have been purged;
                    // belt and braces): abandon.
                    Counters::bump(&shared.counters.orphaned);
                    shared.done.notify_all();
                    continue;
                }
            }
        }
        // Nothing runnable: sleep until the earliest scheduled wake-up,
        // bounded so in-flight completions and shutdowns are never missed.
        let wait = st
            .queue
            .iter()
            .map(|j| j.not_before.saturating_sub(now))
            .min()
            .filter(|d| !d.is_zero())
            .unwrap_or(Duration::from_millis(50))
            .min(Duration::from_millis(50));
        st = shared
            .work
            .wait_timeout(st, wait)
            .expect("pipeline state poisoned")
            .0;
    }
}

/// What the admission step (breaker + holdout split) decided.
enum Admission {
    /// Breaker open: the job went back on the queue, scheduled for the
    /// breaker's probe time, no attempt consumed. `in_flight` cleared.
    Deferred,
    /// The model is no longer tracked.
    Orphaned,
    /// Cleared to refit: a clone of the committed trainer, a snapshot of
    /// the holdout slice, and the training dataset.
    Run {
        trainer: Box<StreamingCpr>,
        holdout: Vec<(Vec<f64>, f64)>,
        train: Dataset,
    },
}

/// Admission for a picked-up job, under the state lock: consult the
/// circuit breaker, carve out the holdout slice (first pickup only —
/// retries must not donate twice), and snapshot what the unlocked fit
/// needs.
fn admit(shared: &Shared, job: &mut Job) -> Admission {
    let mut st = shared.lock();
    let now = shared.now();
    let Some(t) = st.tracked.get_mut(&job.id) else {
        return Admission::Orphaned;
    };
    if !t.breaker.allow(now) {
        // Re-queue at the breaker's probe time; no attempt consumed.
        Counters::bump(&shared.counters.deferred);
        let requeue = Job {
            id: job.id.clone(),
            index: job.index,
            attempt: job.attempt,
            batch: std::mem::take(&mut job.batch),
            split: job.split,
            not_before: t.breaker.retry_at().unwrap_or(now),
        };
        t.queued += 1;
        st.in_flight.remove(&requeue.id);
        st.queue.push_back(requeue);
        drop(st);
        shared.work.notify_all();
        shared.done.notify_all();
        return Admission::Deferred;
    }
    if !job.split {
        job.split = true;
        let k = shared.cfg.holdout_every();
        if k > 0 {
            let mut train = Vec::with_capacity(job.batch.len());
            for (i, sample) in job.batch.drain(..).enumerate() {
                // The first sample never lands here (i+1 ≥ k ≥ 2), so a
                // non-empty batch always keeps at least one train sample.
                if (i + 1) % k == 0 {
                    if t.holdout.len() >= shared.cfg.holdout_cap {
                        t.holdout.pop_front();
                    }
                    t.holdout.push_back(sample);
                } else {
                    train.push(sample);
                }
            }
            job.batch = train;
        }
    }
    Admission::Run {
        trainer: Box::new(t.trainer.clone()),
        holdout: t.holdout.iter().cloned().collect(),
        train: Dataset::from_pairs(job.batch.iter().cloned()),
    }
}

fn fit_gate_install(
    shared: &Shared,
    job: &Job,
    trainer: StreamingCpr,
    holdout: &[(Vec<f64>, f64)],
    train: &Dataset,
) -> Attempt {
    let cfg = &shared.cfg;
    // Injected timeout: the fit is treated as having hung past the
    // deadline (skipped entirely — a real hang would be abandoned).
    if shared.faults.take_timeout(job.index, job.attempt) {
        return Attempt::TimedOut;
    }
    let started = Instant::now();
    let fit = {
        let faults = shared.faults.clone();
        let (index, attempt, sweeps) = (job.index, job.attempt, cfg.sweep_budget);
        let mut candidate = trainer;
        catch_unwind(AssertUnwindSafe(move || {
            if faults.take_fit_panic(index, attempt) {
                panic!("injected refit panic (job {index} attempt {attempt})");
            }
            candidate.update(train, sweeps).map(|_| candidate)
        }))
    };
    let candidate = match fit {
        Err(_) => return Attempt::Panicked,
        Ok(Err(_)) => return Attempt::FitError,
        Ok(Ok(candidate)) => {
            if started.elapsed() > cfg.deadline {
                return Attempt::TimedOut;
            }
            candidate
        }
    };

    // Quality gate: candidate vs live plan on the reserved holdout.
    let Some(live) = shared.registry.plan(&job.id) else {
        return Attempt::Orphaned;
    };
    let ungated = holdout.is_empty();
    if !ungated
        && !gate_passes(
            holdout,
            &candidate.model().shared_plan(),
            &live,
            cfg.gate_slack,
        )
    {
        return Attempt::GateRejected;
    }

    // Install through the wire format — the same parse a cold load gets,
    // so a corrupt candidate is rejected, not served.
    let mut bytes = serialize::to_bytes(candidate.model()).as_ref().to_vec();
    shared.faults.corrupt(job.index, job.attempt, &mut bytes);
    let loaded = match serialize::from_bytes(&bytes) {
        Ok(m) => m,
        Err(_) => return Attempt::CorruptInstall,
    };
    match shared.registry.swap_if_current(&job.id, loaded, &live) {
        SwapOutcome::Swapped => Attempt::Swapped {
            trainer: Box::new(candidate),
            ungated,
        },
        SwapOutcome::Raced => Attempt::LostRace,
        SwapOutcome::Missing => Attempt::Orphaned,
    }
}

/// Candidate-vs-live residual comparison on the holdout slice.
fn gate_passes(
    holdout: &[(Vec<f64>, f64)],
    candidate: &PredictPlan,
    live: &PredictPlan,
    slack: f64,
) -> bool {
    let pairs = || holdout.iter().map(|(x, y)| (x.as_slice(), *y));
    let cand =
        holdout_metrics(|x| candidate.predict(x), pairs()).expect("holdout checked non-empty");
    let live = holdout_metrics(|x| live.predict(x), pairs()).expect("holdout checked non-empty");
    cand.mlogq <= live.mlogq * (1.0 + slack) + 1e-12
}

/// Terminal bookkeeping for one attempt: breaker, counters, retry
/// scheduling, trainer commit/absorb. Always clears `in_flight` and
/// signals both condvars.
fn finish_job(shared: &Shared, mut job: Job, outcome: Attempt) {
    let now = shared.now();
    let c = &shared.counters;
    let mut st = shared.lock();
    st.in_flight.remove(&job.id);
    match outcome {
        Attempt::Swapped { trainer, ungated } => {
            Counters::bump(&c.swapped);
            if ungated {
                Counters::bump(&c.ungated_swaps);
            }
            if let Some(t) = st.tracked.get_mut(&job.id) {
                t.trainer = *trainer;
                t.swaps += 1;
                t.last_swap = Some(now);
                t.breaker.record_success();
            }
        }
        Attempt::GateRejected => {
            // Terminal, not retried: refitting the same data would lose
            // the same gate.
            Counters::bump(&c.gate_rejected);
            if let Some(t) = st.tracked.get_mut(&job.id) {
                t.gate_rejections += 1;
                t.breaker.record_failure(now);
                // Keep the data: statistics advance, factors don't — the
                // next (gated) refit trains on everything seen.
                let batch = Dataset::from_pairs(job.batch.drain(..));
                let _ = t.trainer.absorb(&batch);
            }
        }
        Attempt::Panicked | Attempt::TimedOut | Attempt::FitError | Attempt::CorruptInstall => {
            match &outcome {
                Attempt::Panicked => Counters::bump(&c.panics),
                Attempt::TimedOut => Counters::bump(&c.timeouts),
                Attempt::FitError => Counters::bump(&c.fit_errors),
                Attempt::CorruptInstall => Counters::bump(&c.corrupt_installs),
                _ => unreachable!(),
            }
            let tracked = st.tracked.contains_key(&job.id);
            if tracked {
                if let Some(t) = st.tracked.get_mut(&job.id) {
                    t.breaker.record_failure(now);
                }
                retry_or_drop(shared, &mut st, job, now);
            } else {
                Counters::bump(&c.orphaned);
            }
        }
        Attempt::LostRace => {
            // No breaker penalty: nothing is wrong with this model, the
            // candidate just gated against a plan that moved. Retry
            // re-gates against the new live plan.
            Counters::bump(&c.lost_races);
            if st.tracked.contains_key(&job.id) {
                retry_or_drop(shared, &mut st, job, now);
            } else {
                Counters::bump(&c.orphaned);
            }
        }
        Attempt::Orphaned => Counters::bump(&c.orphaned),
    }
    drop(st);
    shared.work.notify_all();
    shared.done.notify_all();
}

/// Re-queue `job` with exponential backoff, or drop it once retries are
/// exhausted. Caller holds the state lock and already cleared
/// `in_flight`.
fn retry_or_drop(shared: &Shared, st: &mut PipeState, mut job: Job, now: Duration) {
    let cfg = &shared.cfg;
    if job.attempt < cfg.max_retries {
        Counters::bump(&shared.counters.retries);
        job.not_before = now + cfg.backoff(job.attempt);
        job.attempt += 1;
        if let Some(t) = st.tracked.get_mut(&job.id) {
            t.queued += 1;
        }
        st.queue.push_back(job);
    } else {
        Counters::bump(&shared.counters.dropped_jobs);
    }
}
