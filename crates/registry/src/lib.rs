//! # cpr-registry — model-fleet serving
//!
//! The paper's deployment unit is one fitted model per (application ×
//! machine × metric); a production service holds thousands. This crate is
//! that serving layer: a sharded concurrent map of [`ModelId`] →
//! servable entries, loaded from the versioned wire format without
//! re-fitting, hot-swappable under live read traffic, with the dense
//! corner-value caches — the big per-plan memory consumer — tiered under a
//! registry-wide LRU budget, and a batching front end that groups a mixed
//! query stream by model onto `PredictPlan::predict_into`.
//!
//! The contract inherited from `cpr_core` and pinned by this crate's test
//! suite: registry-served predictions are **bitwise identical** to serving
//! the same query through the model's own plan directly — regardless of
//! tier state, concurrent hot-swaps, batch grouping, or thread count.
//!
//! On top of serving sits the self-healing loop: a [`RefitPipeline`]
//! refits tracked models in the background from submitted telemetry
//! (bounded queues, quarantine, panic/timeout containment, per-model
//! [`CircuitBreaker`]s) and hot-swaps candidates only after they pass a
//! holdout quality gate — under every injected fault the registry keeps
//! serving the last-good plan (see the `pipeline` module docs and
//! `tests/fault_injection.rs`).
//!
//! ```
//! use cpr_core::{serialize, CprModel, Loss};
//! use cpr_grid::{ParamSpace, ParamSpec};
//! use cpr_registry::{ModelId, ModelRegistry};
//! use cpr_tensor::CpDecomp;
//!
//! // A servable model (here from parts; normally from a fit), shipped as
//! // wire bytes.
//! let space = ParamSpace::new(vec![ParamSpec::log("n", 8.0, 1024.0)]);
//! let cp = CpDecomp::random(&[6], 2, -1.0, 1.0, 7);
//! let model = CprModel::from_parts(space, &[6], cp, Loss::LogLeastSquares, 0.0).unwrap();
//! let bytes = serialize::to_bytes(&model);
//!
//! // Serve it: load the bytes (no re-fit), query by id.
//! let registry = ModelRegistry::new();
//! let id = ModelId::new("gemm", "stampede2", "time");
//! registry.load(id.clone(), &bytes).unwrap();
//! let y = registry.predict(&id, &[300.0]).unwrap();
//! assert_eq!(y.to_bits(), model.predict(&[300.0]).to_bits());
//! ```

mod batch;
mod error;
mod fault;
mod health;
mod id;
mod pipeline;
mod registry;
mod swap;

pub use error::RegistryError;
pub use fault::FaultInjector;
pub use health::{BreakerConfig, BreakerState, CircuitBreaker, ModelHealth};
pub use id::ModelId;
pub use pipeline::{
    PipelineConfig, PipelineStats, RefitPipeline, ReplayReport, ShedPolicy, SubmitReceipt,
};
pub use registry::{
    ModelRegistry, RegistryStats, RestoreReport, SwapOutcome, DEADLINE_CHECK_CHUNK, LATENCY_SAMPLE,
    SHARD_COUNT,
};
pub use swap::ArcCell;

/// Result alias for registry operations.
pub type Result<T> = std::result::Result<T, RegistryError>;
