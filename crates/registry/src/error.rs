//! Errors surfaced by the serving registry.

use crate::ModelId;
use cpr_core::CprError;
use cpr_store::StoreError;
use std::fmt;

/// Errors from registry lookups, wire-format loads, and the background
/// refit pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// The queried [`ModelId`] has no entry.
    UnknownModel(ModelId),
    /// The supplied model bytes failed to deserialize; the registry is
    /// untouched (loads parse fully before any entry is created or
    /// replaced).
    Load(CprError),
    /// A telemetry batch was submitted for a model the refit pipeline is
    /// not tracking ([`crate::RefitPipeline::track`] was never called, or
    /// the model was untracked).
    Untracked(ModelId),
    /// The pipeline's bounded queue is full for this model and the shed
    /// policy is [`crate::ShedPolicy::RejectNewest`] — explicit
    /// backpressure; the caller decides whether to retry, merge, or drop.
    QueueFull(ModelId),
    /// The durability store failed (IO error or on-medium corruption).
    /// Restore/replay surface this; background persistence degrades
    /// through it instead (counted, never fatal to serving).
    Store(StoreError),
    /// A deadline-aware serve ran out of budget before (or while) doing
    /// the work — the remaining computation was shed, no partial results
    /// are returned. The caller answers with backpressure (the server
    /// maps this to 503 + retry-after).
    DeadlineExceeded,
    /// A query failed validation at the trust boundary: wrong dimension
    /// for the model's parameter space, or a non-finite coordinate. The
    /// registry never runs a plan on such input (the server maps this to
    /// 400).
    MalformedQuery(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownModel(id) => write!(f, "no model registered for {id}"),
            Self::Load(e) => write!(f, "model load failed: {e}"),
            Self::Untracked(id) => write!(f, "refit pipeline is not tracking {id}"),
            Self::QueueFull(id) => write!(f, "refit queue full for {id} (backpressure)"),
            Self::Store(e) => write!(f, "durability store failed: {e}"),
            Self::DeadlineExceeded => write!(f, "deadline exceeded before serving completed"),
            Self::MalformedQuery(msg) => write!(f, "malformed query: {msg}"),
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Load(e) => Some(e),
            Self::Store(e) => Some(e),
            Self::UnknownModel(_)
            | Self::Untracked(_)
            | Self::QueueFull(_)
            | Self::DeadlineExceeded
            | Self::MalformedQuery(_) => None,
        }
    }
}

impl From<CprError> for RegistryError {
    fn from(e: CprError) -> Self {
        Self::Load(e)
    }
}

impl From<StoreError> for RegistryError {
    fn from(e: StoreError) -> Self {
        Self::Store(e)
    }
}
