//! Errors surfaced by the serving registry.

use crate::ModelId;
use cpr_core::CprError;
use std::fmt;

/// Errors from registry lookups and wire-format loads.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// The queried [`ModelId`] has no entry.
    UnknownModel(ModelId),
    /// The supplied model bytes failed to deserialize; the registry is
    /// untouched (loads parse fully before any entry is created or
    /// replaced).
    Load(CprError),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownModel(id) => write!(f, "no model registered for {id}"),
            Self::Load(e) => write!(f, "model load failed: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Load(e) => Some(e),
            Self::UnknownModel(_) => None,
        }
    }
}

impl From<CprError> for RegistryError {
    fn from(e: CprError) -> Self {
        Self::Load(e)
    }
}
