//! The sharded concurrent model registry.
//!
//! Concurrency design (see DESIGN.md "Serving"):
//!
//! * **Shards.** A fixed array of [`SHARD_COUNT`] `RwLock<HashMap>` shards,
//!   keyed by [`ModelId`] through its stable FNV shard hash. Readers take
//!   one shard read lock just long enough to clone an `Arc` to the entry;
//!   inserts/removes take one shard write lock just long enough to move a
//!   pointer. No global lock sits on the read path.
//! * **Hot-swap.** Each entry serves through an [`ArcCell`]: replacing a
//!   plan (rebake, tier change) or a whole entry (reload from bytes)
//!   publishes a new `Arc` while in-flight readers finish on the value
//!   they loaded. Readers never see a partially-built plan — the cell
//!   moves a pointer, never plan bytes.
//! * **Tiering.** Dense corner-value tables dominate a small-grid plan's
//!   footprint, so the registry budgets them globally: under memory
//!   pressure the least-recently-used resident table is dropped
//!   ([`cpr_core::PredictPlan::without_dense_cache`], the factor-gather
//!   fallback — bitwise-identical output) and promotion rebakes it. All
//!   residency transitions serialize through one tier mutex (they are rare
//!   next to reads); the documented invariant is that resident dense bytes
//!   never exceed the budget.
//!
//! Lock order: tier mutex → shard lock. Readers take only a shard read
//! lock; tier transitions take the tier mutex first and shard locks under
//! it; nothing acquires the tier mutex while holding a shard lock.

use crate::batch::group_by_model;
use crate::error::RegistryError;
use crate::id::ModelId;
use crate::swap::ArcCell;
use cpr_core::{serialize, CprModel, PredictPlan};
use cpr_obs::{Counter, EventKind, Histogram, MetricsRegistry};
use cpr_store::FleetStore;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Number of map shards. Fixed at build time: shard selection must stay a
/// mask, and 64 shards keep write contention negligible for fleets far
/// larger than the paper's per-machine model counts.
pub const SHARD_COUNT: usize = 64;

/// How many queries a deadline-aware batch serves between deadline
/// re-checks. Small enough that an expired budget sheds within a few
/// microseconds of work, large enough that the `Instant::now()` syscall
/// is amortized to nothing on the hot path.
pub const DEADLINE_CHECK_CHUNK: usize = 512;

/// Latency-histogram sampling rate when timing is on: one in this many
/// timed operations pays the `Instant::now()` pair and records into the
/// `cpr_registry_{lookup,serve}_us` histograms. A dense-table serve runs
/// in a few hundred nanoseconds, so timing *every* query would cost more
/// than the serve itself (~20% measured by the `obs_overhead` perf
/// stage); deterministic round-robin sampling keeps full instrumentation
/// under the 5% overhead budget while the counters — which are never
/// sampled — stay exact. The histograms are distribution estimates over
/// an unbiased 1-in-N slice of the stream, not per-query ledgers.
pub const LATENCY_SAMPLE: u64 = 16;

/// One served entry: the model (kept for promotion rebakes and metadata)
/// plus the hot-swappable plan actually answering queries. The model is
/// itself behind an [`ArcCell`] so a background refit can replace it
/// *without* replacing the entry — the entry (and with it the LRU recency
/// and tier history) survives a [`ModelRegistry::swap_if_current`].
struct ServableModel {
    model: ArcCell<CprModel>,
    plan: ArcCell<PredictPlan>,
    /// Bytes of this entry's dense corner-value table while resident, 0
    /// when demoted (or never cacheable). Mutated only under the tier
    /// mutex.
    resident_bytes: AtomicUsize,
    /// LRU clock value of the last serve (or insert). Relaxed: eviction
    /// order tolerates approximate recency; predictions never depend on it.
    last_used: AtomicU64,
    /// Nanoseconds (since the registry epoch) when this entry's *model*
    /// was last installed or swapped — tier changes and rebakes of the
    /// same model do not reset it. Feeds the staleness figure in
    /// [`RegistryStats`].
    installed_ns: AtomicU64,
}

type Shard = RwLock<HashMap<ModelId, Arc<ServableModel>>>;

/// Aggregate registry counters, cheap enough to sample per bench stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryStats {
    /// Registered models.
    pub models: usize,
    /// Entries whose dense corner-value table is currently resident.
    pub dense_resident: usize,
    /// Total resident dense-table bytes (≤ `budget` always).
    pub dense_bytes: usize,
    /// The registry-wide dense-table budget in bytes.
    pub budget: usize,
    /// Queries served off a resident dense table.
    pub dense_hits: u64,
    /// Queries served through the factor-gather fallback.
    pub gather_hits: u64,
    /// Lookups that found no model.
    pub misses: u64,
    /// Deadline-aware serves shed because the budget expired before (or
    /// while) computing — see [`ModelRegistry::predict_deadline`] and
    /// [`ModelRegistry::serve_batch_deadline`]. One count per shed call.
    pub deadline_shed: u64,
    /// Queries rejected at the validation boundary (wrong dimension or
    /// non-finite coordinates) before any plan ran. One count per
    /// rejected call.
    pub malformed: u64,
    /// Model hot-swaps: background-refit installs
    /// ([`ModelRegistry::swap_if_current`]) plus whole-entry replacements
    /// (an [`ModelRegistry::insert`]/[`ModelRegistry::load`] over an
    /// existing id). Fresh inserts don't count.
    pub swaps: u64,
    /// Age of the *stalest* model in the fleet — time since the entry
    /// whose model was installed/swapped longest ago. `None` for an empty
    /// registry. The health signal a refit pipeline watches: a fleet under
    /// healthy churn keeps this bounded, a wedged pipeline lets it grow.
    pub oldest_model_age: Option<Duration>,
}

/// What [`ModelRegistry::restore`] recovered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreReport {
    /// Snapshot-store generation the fleet was recovered from (0 for an
    /// empty store).
    pub generation: u64,
    /// Models now registered and serving, sorted by id.
    pub restored: Vec<ModelId>,
    /// Snapshot entries that could not be restored (undecodable key or
    /// unparseable bytes), with reasons. The rest of the fleet serves.
    pub skipped: Vec<String>,
}

/// What a [`ModelRegistry::swap_if_current`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapOutcome {
    /// The expected plan was live; the new model now serves.
    Swapped,
    /// Another install landed first — the caller's gate comparison is
    /// stale. Retryable: re-gate against the new live plan.
    Raced,
    /// The id has no entry (removed since the caller looked it up).
    Missing,
}

impl RegistryStats {
    /// Fraction of served queries that hit a resident dense table.
    pub fn dense_hit_rate(&self) -> f64 {
        let total = self.dense_hits + self.gather_hits;
        if total == 0 {
            0.0
        } else {
            self.dense_hits as f64 / total as f64
        }
    }
}

/// A sharded, concurrently readable fleet of servable models. See the
/// module docs for the locking design; the serving guarantees are:
///
/// * predictions are **bitwise identical** to serving the same query
///   through the model's own [`PredictPlan`] directly, whatever the tier
///   state and whatever swaps run concurrently (a swap installs a rebake
///   of the same model, and demotion only drops the dense table — both
///   bitwise-neutral by the plan's determinism contract);
/// * a load from malformed bytes fails before any entry is touched;
/// * resident dense-table bytes never exceed the configured budget.
pub struct ModelRegistry {
    shards: [Shard; SHARD_COUNT],
    /// Registry-wide dense-table budget in bytes.
    budget: usize,
    /// Serializes residency transitions and the byte ledger behind them.
    tier: Mutex<TierLedger>,
    /// Monotone LRU clock; each serve/insert takes a tick.
    clock: AtomicU64,
    /// The observability hub this registry (and every layer stacked on it
    /// — pipeline, store, server) reports into. The counters below are
    /// handles into it, so [`RegistryStats`] is a *view* over the same
    /// cells `render()` exports: the two can never disagree.
    obs: Arc<MetricsRegistry>,
    /// Whether serve/lookup latency timing is on. Counters are always
    /// exact; only the `Instant::now()` pairs feeding the latency
    /// histograms are gated, so an untimed registry pays nothing for them
    /// and serves bitwise-identically to a timed one.
    timed: AtomicBool,
    /// Round-robin tick behind [`LATENCY_SAMPLE`]: a timed operation pays
    /// the clock pair only when its tick lands on the sample.
    sample_tick: AtomicU64,
    lookup_us: Histogram,
    serve_us: Histogram,
    dense_hits: Counter,
    gather_hits: Counter,
    misses: Counter,
    swaps: Counter,
    deadline_shed: Counter,
    malformed: Counter,
    /// Zero point for entry install timestamps (staleness accounting).
    epoch: Instant,
}

struct TierLedger {
    dense_bytes: usize,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelRegistry {
    /// An unbounded registry: every cacheable plan keeps its dense table.
    pub fn new() -> Self {
        Self::with_budget(usize::MAX)
    }

    /// A registry whose resident dense corner-value tables may total at
    /// most `budget_bytes`. Plans over budget serve through the
    /// factor-gather fallback — same results, more work per corner.
    ///
    /// Owns a private [`MetricsRegistry`] with latency timing *off* (the
    /// counters still count); use [`Self::with_obs`] to share a hub
    /// across layers, or [`Self::enable_timing`] to turn timing on here.
    pub fn with_budget(budget_bytes: usize) -> Self {
        Self::build(budget_bytes, Arc::new(MetricsRegistry::new()), false)
    }

    /// A registry reporting into a shared observability hub, with
    /// serve/lookup latency timing on.
    pub fn with_obs(budget_bytes: usize, obs: Arc<MetricsRegistry>) -> Self {
        Self::build(budget_bytes, obs, true)
    }

    fn build(budget_bytes: usize, obs: Arc<MetricsRegistry>, timed: bool) -> Self {
        Self {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            budget: budget_bytes,
            tier: Mutex::new(TierLedger { dense_bytes: 0 }),
            clock: AtomicU64::new(0),
            timed: AtomicBool::new(timed),
            sample_tick: AtomicU64::new(0),
            lookup_us: obs.histogram("cpr_registry_lookup_us"),
            serve_us: obs.histogram("cpr_registry_serve_us"),
            dense_hits: obs.counter("cpr_registry_dense_hits_total"),
            gather_hits: obs.counter("cpr_registry_gather_hits_total"),
            misses: obs.counter("cpr_registry_misses_total"),
            swaps: obs.counter("cpr_registry_swaps_total"),
            deadline_shed: obs.counter("cpr_registry_deadline_shed_total"),
            malformed: obs.counter("cpr_registry_malformed_total"),
            obs,
            epoch: Instant::now(),
        }
    }

    /// The observability hub this registry reports into. The refit
    /// pipeline, fleet store, and HTTP front end all publish into the
    /// same hub, and the server's `GET /metrics` renders it.
    pub fn obs(&self) -> &Arc<MetricsRegistry> {
        &self.obs
    }

    /// Turn on serve/lookup latency timing (see [`Self::with_budget`]).
    pub fn enable_timing(&self) {
        self.timed.store(true, Ordering::Relaxed);
    }

    /// Start a latency timer iff timing is on *and* this operation's tick
    /// lands on the 1-in-[`LATENCY_SAMPLE`] sample. Timing feeds
    /// histograms only — never values — so the bitwise-identical serving
    /// contract holds with it on or off.
    #[inline]
    fn timer(&self) -> Option<Instant> {
        if !self.timed.load(Ordering::Relaxed) {
            return None;
        }
        (self
            .sample_tick
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(LATENCY_SAMPLE))
        .then(Instant::now)
    }

    #[inline]
    fn observe(t: Option<Instant>, hist: &Histogram) {
        if let Some(t) = t {
            hist.record_duration(t.elapsed());
        }
    }

    /// Nanoseconds since the registry epoch, saturating (u64 nanoseconds
    /// cover ~584 years of uptime).
    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn shard(&self, id: &ModelId) -> &Shard {
        &self.shards[(id.shard_hash() as usize) & (SHARD_COUNT - 1)]
    }

    fn entry(&self, id: &ModelId) -> Option<Arc<ServableModel>> {
        self.shard(id)
            .read()
            .expect("shard poisoned")
            .get(id)
            .cloned()
    }

    fn touch(&self, entry: &ServableModel) {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        entry.last_used.store(tick, Ordering::Relaxed);
    }

    fn count_serve(&self, plan: &PredictPlan, queries: u64) {
        if plan.has_dense_cache() {
            self.dense_hits.add(queries);
        } else {
            self.gather_hits.add(queries);
        }
    }

    /// Register (or hot-replace) a model. The entry starts dense-resident
    /// when its table fits the budget after LRU demotions of colder
    /// entries, demoted otherwise. Replacing an existing id swaps the
    /// whole entry; readers that already looked the old one up finish on
    /// its old plan. Returns `true` if an existing entry was replaced.
    pub fn insert(&self, id: ModelId, model: CprModel) -> bool {
        let mut tier = self.tier.lock().expect("tier poisoned");
        let plan = model.shared_plan();
        let need = plan.dense_cache_bytes();
        let (plan, resident) = if need == 0 {
            (plan, 0)
        } else {
            // An outgoing same-id entry is an eviction candidate like any
            // other: it is leaving anyway.
            self.make_room(&mut tier, need);
            if tier.dense_bytes + need <= self.budget {
                tier.dense_bytes += need;
                (plan, need)
            } else {
                (Arc::new(plan.without_dense_cache()), 0)
            }
        };
        let entry = Arc::new(ServableModel {
            model: ArcCell::new(Arc::new(model)),
            plan: ArcCell::new(plan),
            resident_bytes: AtomicUsize::new(resident),
            last_used: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed) + 1),
            installed_ns: AtomicU64::new(self.now_ns()),
        });
        // One `HashMap::insert` replaces the entry in place: readers see
        // the old model or the new one, never a missing id mid-swap.
        let detail = id.to_string();
        let old = self
            .shard(&id)
            .write()
            .expect("shard poisoned")
            .insert(id, entry);
        match old {
            Some(old) => {
                // Retire the outgoing entry's ledger share; its table
                // frees once in-flight readers drop their handles.
                tier.dense_bytes -= old.resident_bytes.swap(0, Ordering::Relaxed);
                self.swaps.inc();
                self.obs.events().record(EventKind::Swap, detail);
                true
            }
            None => false,
        }
    }

    /// Load a model from its serialized wire bytes (v1 or v2) and register
    /// it — deserialization bakes the plan; nothing is re-fit. Malformed
    /// bytes return [`RegistryError::Load`] with the registry untouched:
    /// parsing completes before any entry is created or replaced.
    ///
    /// # Atomicity when replacing a live entry
    ///
    /// The precise guarantee — no more, no less — when `id` already has an
    /// entry that concurrent readers are serving from:
    ///
    /// * **Replacement is a single pointer move.** The new entry is fully
    ///   built (parsed, plan baked, tier decided) before one `HashMap`
    ///   insert publishes it. A concurrent lookup observes either the old
    ///   entry or the new one, never a missing id and never a
    ///   partially-built entry.
    /// * **Held handles are immortal snapshots.** A reader that obtained
    ///   the old entry's plan (via [`Self::plan`], or internally during
    ///   [`Self::predict`]/[`Self::serve_batch`]) keeps serving that exact
    ///   plan, bitwise-stable, for as long as it holds the `Arc` — the
    ///   load does not wait for it, invalidate it, or mutate it. Memory is
    ///   reclaimed only when the last handle drops.
    /// * **What is *not* guaranteed:** any ordering between the load and
    ///   in-flight reads (a query racing the load may be answered by
    ///   either model), and any cross-entry atomicity (a multi-id bulk
    ///   load is per-id atomic only). A batch served through
    ///   [`Self::serve_batch`] resolves each distinct id exactly once, so
    ///   one batch never mixes old and new predictions *for the same id*,
    ///   but two ids may straddle a concurrent two-id reload.
    pub fn load(&self, id: ModelId, bytes: &[u8]) -> Result<bool, RegistryError> {
        let model = serialize::from_bytes(bytes)?;
        Ok(self.insert(id, model))
    }

    /// Drop a model. Readers that already hold its plan finish on it.
    pub fn remove(&self, id: &ModelId) -> bool {
        let mut tier = self.tier.lock().expect("tier poisoned");
        let removed = self.shard(id).write().expect("shard poisoned").remove(id);
        match removed {
            Some(entry) => {
                tier.dense_bytes -= entry.resident_bytes.swap(0, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Rebake `id`'s plan from its stored model and hot-swap it in,
    /// preserving the entry's tier (a demoted entry stays demoted, with
    /// the fresh bake's table stripped). In-flight readers finish on the
    /// old plan; the rebake is bitwise-neutral, so no caller can tell
    /// *which* plan served it. Returns `false` for unknown ids.
    pub fn rebake(&self, id: &ModelId) -> bool {
        let tier = self.tier.lock().expect("tier poisoned");
        let Some(entry) = self.entry(id) else {
            return false;
        };
        let fresh = entry.model.load().bake_plan();
        let resident = entry.resident_bytes.load(Ordering::Relaxed) > 0;
        let fresh = if resident {
            fresh
        } else {
            fresh.without_dense_cache()
        };
        entry.plan.store(Arc::new(fresh));
        drop(tier);
        true
    }

    /// Demote `id`: drop its resident dense table, freeing budget; the
    /// entry serves through the factor-gather fallback from here (bitwise
    /// the same results). Returns `true` if a table was actually dropped.
    pub fn demote(&self, id: &ModelId) -> bool {
        let mut tier = self.tier.lock().expect("tier poisoned");
        match self.entry(id) {
            Some(entry) => Self::demote_entry(&mut tier, &entry),
            None => false,
        }
    }

    /// Promote `id`: rebake its dense table and make it resident, demoting
    /// LRU entries as needed to fit the budget. Returns `false` when the
    /// id is unknown, the model's grid is beyond the dense cap, or the
    /// table cannot fit the budget even alone.
    pub fn promote(&self, id: &ModelId) -> bool {
        let mut tier = self.tier.lock().expect("tier poisoned");
        let Some(entry) = self.entry(id) else {
            return false;
        };
        if entry.resident_bytes.load(Ordering::Relaxed) > 0 {
            return true; // already resident
        }
        let fresh = entry.model.load().bake_plan();
        let need = fresh.dense_cache_bytes();
        if need == 0 {
            return false; // grid beyond the dense cap: nothing to promote
        }
        self.make_room(&mut tier, need);
        if tier.dense_bytes + need > self.budget {
            return false; // cannot fit even after demoting everyone else
        }
        tier.dense_bytes += need;
        entry.resident_bytes.store(need, Ordering::Relaxed);
        entry.plan.store(Arc::new(fresh));
        self.touch(&entry);
        true
    }

    /// Demote one entry under the tier mutex; returns whether bytes moved.
    fn demote_entry(tier: &mut TierLedger, entry: &ServableModel) -> bool {
        let bytes = entry.resident_bytes.swap(0, Ordering::Relaxed);
        if bytes == 0 {
            return false;
        }
        tier.dense_bytes -= bytes;
        let stripped = entry.plan.load().without_dense_cache();
        entry.plan.store(Arc::new(stripped));
        true
    }

    /// Demote least-recently-used resident entries until `need` more bytes
    /// fit the budget or no victims remain. (Callers' targets are never
    /// candidates: an incoming insert isn't registered yet, and a
    /// promotion target isn't resident.)
    fn make_room(&self, tier: &mut TierLedger, need: usize) {
        while tier.dense_bytes > 0 && tier.dense_bytes + need > self.budget {
            let mut victim: Option<(u64, Arc<ServableModel>)> = None;
            for shard in &self.shards {
                for entry in shard.read().expect("shard poisoned").values() {
                    if entry.resident_bytes.load(Ordering::Relaxed) == 0 {
                        continue;
                    }
                    let used = entry.last_used.load(Ordering::Relaxed);
                    if victim.as_ref().is_none_or(|(best, _)| used < *best) {
                        victim = Some((used, entry.clone()));
                    }
                }
            }
            match victim {
                Some((_, entry)) => {
                    Self::demote_entry(tier, &entry);
                }
                None => break,
            }
        }
    }

    /// Install `model` over `id`'s entry **iff** the plan the caller gated
    /// against is still the live one (pointer identity on the `Arc` from
    /// [`Self::plan`]). The conditional-swap primitive behind the
    /// background refit pipeline: a candidate was quality-gated against a
    /// snapshot of the live plan, and installing it after someone else
    /// already swapped would publish a model vetted against stale
    /// competition.
    ///
    /// On success the *entry* survives — LRU recency, miss counters, and
    /// id identity are untouched; only the model and its plan move, and
    /// the fresh plan goes through the same budget admission as an insert
    /// (demoted if its dense table cannot fit). In-flight readers finish
    /// on the old plan.
    pub fn swap_if_current(
        &self,
        id: &ModelId,
        model: CprModel,
        expected: &Arc<PredictPlan>,
    ) -> SwapOutcome {
        let mut tier = self.tier.lock().expect("tier poisoned");
        let Some(entry) = self.entry(id) else {
            return SwapOutcome::Missing;
        };
        // Decide the raced case before touching the ledger. The tier mutex
        // serializes all plan installs, so between this check and the CAS
        // below nothing else can move the cell.
        if !Arc::ptr_eq(&entry.plan.load(), expected) {
            return SwapOutcome::Raced;
        }
        let plan = model.shared_plan();
        let need = plan.dense_cache_bytes();
        // Free the outgoing plan's residency first: the incoming plan
        // competes for the budget like a fresh insert would.
        tier.dense_bytes -= entry.resident_bytes.swap(0, Ordering::Relaxed);
        let (plan, resident) = if need == 0 {
            (plan, 0)
        } else {
            self.make_room(&mut tier, need);
            if tier.dense_bytes + need <= self.budget {
                tier.dense_bytes += need;
                (plan, need)
            } else {
                (Arc::new(plan.without_dense_cache()), 0)
            }
        };
        entry
            .plan
            .compare_and_swap(expected, plan)
            .expect("plan moved under the tier mutex");
        entry.resident_bytes.store(resident, Ordering::Relaxed);
        entry.model.store(Arc::new(model));
        entry.installed_ns.store(self.now_ns(), Ordering::Relaxed);
        self.touch(&entry);
        self.swaps.inc();
        self.obs.events().record(EventKind::Swap, id.to_string());
        SwapOutcome::Swapped
    }

    /// The plan currently serving `id` — a shared handle that stays valid
    /// (and bitwise-stable) however long the caller holds it, across any
    /// concurrent swap, demotion, or removal.
    pub fn plan(&self, id: &ModelId) -> Option<Arc<PredictPlan>> {
        let t = self.timer();
        let out = match self.entry(id) {
            Some(entry) => {
                self.touch(&entry);
                Some(entry.plan.load())
            }
            None => {
                self.misses.inc();
                None
            }
        };
        Self::observe(t, &self.lookup_us);
        out
    }

    /// Serve one query. Bitwise-identical to `model.plan().predict(x)` on
    /// the model registered under `id`.
    pub fn predict(&self, id: &ModelId, x: &[f64]) -> Result<f64, RegistryError> {
        let t = self.timer();
        let Some(entry) = self.entry(id) else {
            self.misses.inc();
            return Err(RegistryError::UnknownModel(id.clone()));
        };
        self.touch(&entry);
        let plan = entry.plan.load();
        self.count_serve(&plan, 1);
        let y = plan.predict(x);
        Self::observe(t, &self.serve_us);
        Ok(y)
    }

    /// Serve a mixed query stream: group by [`ModelId`] (one lookup and
    /// one plan load per distinct model), ride each group through
    /// [`PredictPlan::predict_into`]'s chunked pipeline, and scatter
    /// results back to input order. Output `i` is bitwise-identical to
    /// `predict(&queries[i].0, &queries[i].1)` — independent of grouping,
    /// batch composition, and thread count. Any unknown id fails the whole
    /// batch (the stream is then not a fleet the caller controls).
    pub fn serve_batch<X: AsRef<[f64]> + Sync>(
        &self,
        queries: &[(ModelId, X)],
    ) -> Result<Vec<f64>, RegistryError> {
        let t = self.timer();
        let groups = group_by_model(queries.iter().map(|(id, _)| id));
        let mut out = vec![0.0; queries.len()];
        let mut gathered: Vec<&[f64]> = Vec::new();
        let mut scratch: Vec<f64> = Vec::new();
        for (id, indices) in groups {
            let Some(entry) = self.entry(id) else {
                self.misses.inc();
                return Err(RegistryError::UnknownModel(id.clone()));
            };
            self.touch(&entry);
            let plan = entry.plan.load();
            self.count_serve(&plan, indices.len() as u64);
            gathered.clear();
            gathered.extend(indices.iter().map(|&i| queries[i as usize].1.as_ref()));
            scratch.clear();
            scratch.resize(indices.len(), 0.0);
            plan.predict_into(&gathered, &mut scratch);
            for (&i, &y) in indices.iter().zip(scratch.iter()) {
                out[i as usize] = y;
            }
        }
        Self::observe(t, &self.serve_us);
        Ok(out)
    }

    /// Reject a query the plan must never run: wrong dimension for the
    /// model's parameter space, or a non-finite coordinate. This is the
    /// trust boundary the network front end leans on — everything past it
    /// may assume well-formed input.
    fn validate_query(plan: &PredictPlan, x: &[f64]) -> Result<(), RegistryError> {
        if x.len() != plan.order() {
            return Err(RegistryError::MalformedQuery(format!(
                "query has {} coordinates, model has order {}",
                x.len(),
                plan.order()
            )));
        }
        if let Some(bad) = x.iter().position(|v| !v.is_finite()) {
            return Err(RegistryError::MalformedQuery(format!(
                "non-finite coordinate at index {bad}"
            )));
        }
        Ok(())
    }

    /// [`Self::predict`] with validation and a hard time budget: the query
    /// is checked (dimension, finiteness) before anything runs, and an
    /// already-expired `deadline` sheds the request *before* the plan does
    /// any work. A served answer is bitwise-identical to [`Self::predict`].
    pub fn predict_deadline(
        &self,
        id: &ModelId,
        x: &[f64],
        deadline: Instant,
    ) -> Result<f64, RegistryError> {
        let t = self.timer();
        let Some(entry) = self.entry(id) else {
            self.misses.inc();
            return Err(RegistryError::UnknownModel(id.clone()));
        };
        self.touch(&entry);
        let plan = entry.plan.load();
        if let Err(e) = Self::validate_query(&plan, x) {
            self.malformed.inc();
            return Err(e);
        }
        if Instant::now() >= deadline {
            self.deadline_shed.inc();
            return Err(RegistryError::DeadlineExceeded);
        }
        self.count_serve(&plan, 1);
        let y = plan.predict(x);
        Self::observe(t, &self.serve_us);
        Ok(y)
    }

    /// [`Self::serve_batch`] with validation and a hard time budget. Every
    /// query in the batch is validated before any prediction runs (one
    /// malformed query fails the whole batch with no work done), and the
    /// deadline is re-checked between [`DEADLINE_CHECK_CHUNK`]-query
    /// chunks so a large batch cannot blow far past its budget — an
    /// expired deadline sheds the *rest* of the batch and returns
    /// [`RegistryError::DeadlineExceeded`] with no partial results. A
    /// completed batch is bitwise-identical to [`Self::serve_batch`]
    /// (chunking never changes per-query results, by the plan's
    /// determinism contract).
    pub fn serve_batch_deadline<X: AsRef<[f64]> + Sync>(
        &self,
        queries: &[(ModelId, X)],
        deadline: Instant,
    ) -> Result<Vec<f64>, RegistryError> {
        let t = self.timer();
        let groups = group_by_model(queries.iter().map(|(id, _)| id));
        // Validate the whole batch up front: a malformed query must shed
        // the request before any compute, not halfway through.
        for (id, indices) in &groups {
            let Some(entry) = self.entry(id) else {
                self.misses.inc();
                return Err(RegistryError::UnknownModel((**id).clone()));
            };
            let plan = entry.plan.load();
            for &i in indices.iter() {
                if let Err(e) = Self::validate_query(&plan, queries[i as usize].1.as_ref()) {
                    self.malformed.inc();
                    return Err(e);
                }
            }
        }
        let mut out = vec![0.0; queries.len()];
        let mut gathered: Vec<&[f64]> = Vec::new();
        let mut scratch: Vec<f64> = Vec::new();
        for (id, indices) in groups {
            let Some(entry) = self.entry(id) else {
                self.misses.inc();
                return Err(RegistryError::UnknownModel(id.clone()));
            };
            self.touch(&entry);
            let plan = entry.plan.load();
            for chunk in indices.chunks(DEADLINE_CHECK_CHUNK) {
                if Instant::now() >= deadline {
                    self.deadline_shed.inc();
                    return Err(RegistryError::DeadlineExceeded);
                }
                self.count_serve(&plan, chunk.len() as u64);
                gathered.clear();
                gathered.extend(chunk.iter().map(|&i| queries[i as usize].1.as_ref()));
                scratch.clear();
                scratch.resize(chunk.len(), 0.0);
                plan.predict_into(&gathered, &mut scratch);
                for (&i, &y) in chunk.iter().zip(scratch.iter()) {
                    out[i as usize] = y;
                }
            }
        }
        Self::observe(t, &self.serve_us);
        Ok(out)
    }

    /// Whether `id` currently serves off a resident dense table.
    pub fn is_dense_resident(&self, id: &ModelId) -> Option<bool> {
        self.entry(id)
            .map(|e| e.resident_bytes.load(Ordering::Relaxed) > 0)
    }

    pub fn contains(&self, id: &ModelId) -> bool {
        self.shard(id)
            .read()
            .expect("shard poisoned")
            .contains_key(id)
    }

    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard poisoned").len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All registered ids, sorted (stable regardless of shard layout).
    pub fn ids(&self) -> Vec<ModelId> {
        let mut ids: Vec<ModelId> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .expect("shard poisoned")
                    .keys()
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        ids.sort();
        ids
    }

    /// Persist the whole fleet into `store` as one snapshot generation:
    /// every registered model's wire bytes, checksummed and committed
    /// behind a single atomic manifest rename. A crash anywhere inside
    /// leaves the store on its previous generation, complete. Returns
    /// the committed generation.
    pub fn snapshot_into(&self, store: &FleetStore) -> Result<u64, RegistryError> {
        let mut models = Vec::new();
        for id in self.ids() {
            if let Some(entry) = self.entry(&id) {
                let bytes = serialize::to_bytes(&entry.model.load());
                models.push((id.store_key(), bytes.as_ref().to_vec()));
            }
        }
        Ok(store.snapshots().commit_fleet(models)?)
    }

    /// Recover the fleet from `store`'s newest durable generation: every
    /// model in the snapshot is loaded through the same wire parse as a
    /// cold [`Self::load`] (a model that fails to parse is skipped and
    /// reported, never served). Existing entries under restored ids are
    /// hot-replaced; readers in flight finish on what they hold —
    /// restore never stops serving. Store keys that don't decode to a
    /// [`ModelId`], and models whose bytes don't parse, land in
    /// [`RestoreReport::skipped`].
    pub fn restore(&self, store: &FleetStore) -> Result<RestoreReport, RegistryError> {
        let fleet = store.snapshots().load()?;
        let mut report = RestoreReport {
            generation: fleet.generation,
            restored: Vec::new(),
            skipped: Vec::new(),
        };
        for (key, bytes) in &fleet.models {
            let Some(id) = ModelId::from_store_key(key) else {
                report
                    .skipped
                    .push(format!("undecodable store key {key:?}"));
                continue;
            };
            match self.load(id.clone(), bytes) {
                Ok(_) => report.restored.push(id),
                Err(e) => report.skipped.push(format!("{id}: {e}")),
            }
        }
        Ok(report)
    }

    /// Snapshot the registry counters and tier ledger.
    pub fn stats(&self) -> RegistryStats {
        let (models, dense_resident, stalest_ns) =
            self.shards
                .iter()
                .fold((0, 0, u64::MAX), |(n, r, stale), s| {
                    let shard = s.read().expect("shard poisoned");
                    let resident = shard
                        .values()
                        .filter(|e| e.resident_bytes.load(Ordering::Relaxed) > 0)
                        .count();
                    let oldest = shard
                        .values()
                        .map(|e| e.installed_ns.load(Ordering::Relaxed))
                        .min()
                        .unwrap_or(u64::MAX);
                    (n + shard.len(), r + resident, stale.min(oldest))
                });
        let oldest_model_age = (stalest_ns != u64::MAX)
            .then(|| Duration::from_nanos(self.now_ns().saturating_sub(stalest_ns)));
        RegistryStats {
            models,
            dense_resident,
            dense_bytes: self.tier.lock().expect("tier poisoned").dense_bytes,
            budget: self.budget,
            dense_hits: self.dense_hits.get(),
            gather_hits: self.gather_hits.get(),
            misses: self.misses.get(),
            swaps: self.swaps.get(),
            deadline_shed: self.deadline_shed.get(),
            malformed: self.malformed.get(),
            oldest_model_age,
        }
    }
}

// The whole point: one registry shared across serving threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ModelRegistry>();
};
