//! Per-model health: the circuit breaker guarding background refits, and
//! the health snapshot the pipeline exposes per tracked model.
//!
//! The breaker is the standard three-state machine, specialized for a
//! refit pipeline where "request" means "attempt a refit job":
//!
//! * **Closed** — refits run normally. `failure_threshold` *consecutive*
//!   failures trip it open (any success resets the streak).
//! * **Open** — refits are refused until a cooldown elapses. The cooldown
//!   doubles with every consecutive trip (`cooldown_base · 2^(trips-1)`,
//!   capped at `cooldown_max`), so a persistently broken model backs off
//!   exponentially instead of burning the worker pool.
//! * **Half-open** — after the cooldown, exactly one probe refit is
//!   allowed through (the pipeline serializes jobs per model, which is
//!   what makes "exactly one" hold). Probe success closes the breaker and
//!   resets the backoff; probe failure re-opens it with a doubled
//!   cooldown.
//!
//! The machine is driven by an explicit logical clock (a [`Duration`]
//! since the pipeline's epoch) rather than reading wall time itself —
//! that is what makes the backoff *schedule* deterministic and
//! proptestable against a reference model (`tests/breaker.rs`).

use std::time::Duration;

/// Circuit-breaker tuning for one tracked model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures (while closed) that trip the breaker open.
    pub failure_threshold: u32,
    /// Cooldown after the first trip; doubles per consecutive trip.
    pub cooldown_base: Duration,
    /// Upper bound on the doubled cooldown.
    pub cooldown_max: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            cooldown_base: Duration::from_millis(100),
            cooldown_max: Duration::from_secs(30),
        }
    }
}

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Refits run normally.
    Closed,
    /// Refits refused until the cooldown elapses.
    Open,
    /// One probe refit is in flight (or allowed).
    HalfOpen,
}

/// Deterministic closed → open → half-open circuit breaker. See the
/// module docs for the transition rules; `now` arguments are a logical
/// clock (time since some fixed epoch) supplied by the caller.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    /// Consecutive trips since the last success; exponent of the backoff.
    trips: u32,
    /// When the current open period ends (valid while `Open`).
    open_until: Duration,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            trips: 0,
            open_until: Duration::ZERO,
        }
    }

    /// Current state. An open breaker whose cooldown has elapsed still
    /// reports `Open` until [`Self::allow`] observes the clock.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Current consecutive-failure streak.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// The cooldown for the `trip`-th consecutive trip (1-based):
    /// `cooldown_base · 2^(trip-1)`, saturating, capped at `cooldown_max`.
    pub fn cooldown_for(config: &BreakerConfig, trip: u32) -> Duration {
        let exp = trip.saturating_sub(1).min(32);
        let factor = 1u64 << exp;
        let scaled = config
            .cooldown_base
            .checked_mul(u32::try_from(factor).unwrap_or(u32::MAX))
            .unwrap_or(config.cooldown_max);
        scaled.min(config.cooldown_max)
    }

    /// May a refit run at `now`? Transitions Open → HalfOpen when the
    /// cooldown has elapsed (the returned `true` *is* the probe
    /// admission — the caller must report the probe's outcome).
    pub fn allow(&mut self, now: Duration) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now >= self.open_until {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Earliest clock value at which [`Self::allow`] will return `true`;
    /// `None` when it already would (closed / half-open).
    pub fn retry_at(&self) -> Option<Duration> {
        match self.state {
            BreakerState::Open => Some(self.open_until),
            _ => None,
        }
    }

    /// A refit succeeded: close fully and reset both the failure streak
    /// and the backoff exponent.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.trips = 0;
    }

    /// A refit failed at `now`. While closed, trips open once the streak
    /// reaches the threshold; a half-open probe failure re-opens
    /// immediately with a doubled cooldown.
    pub fn record_failure(&mut self, now: Duration) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        match self.state {
            BreakerState::Closed => {
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.trip(now);
                }
            }
            // A failure reported while open (possible if the caller raced
            // an admission decision) re-arms the cooldown like a failed
            // probe would.
            BreakerState::HalfOpen | BreakerState::Open => self.trip(now),
        }
    }

    fn trip(&mut self, now: Duration) {
        self.trips = self.trips.saturating_add(1);
        self.open_until = now + Self::cooldown_for(&self.config, self.trips);
        self.state = BreakerState::Open;
    }
}

/// Point-in-time health of one pipeline-tracked model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelHealth {
    /// Breaker state as of the snapshot.
    pub breaker: BreakerState,
    /// Consecutive refit failures (resets on success).
    pub consecutive_failures: u32,
    /// Telemetry jobs queued (not yet picked up) for this model.
    pub queued: usize,
    /// Samples currently reserved in the holdout slice the quality gate
    /// scores against.
    pub holdout_reserved: usize,
    /// Successful gated swaps since tracking began.
    pub swaps: u64,
    /// Candidates the quality gate refused.
    pub gate_rejections: u64,
    /// Time since the last successful swap; `None` before the first.
    pub last_swap_age: Option<Duration>,
    /// Snapshot-store generation this model was last durably persisted
    /// in (at restore, or by the last successful post-swap persist).
    /// `None` when the pipeline has no store attached or nothing has
    /// been persisted yet — everything swapped since is WAL-covered
    /// only.
    pub durable_generation: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threshold: u32, base_ms: u64, max_ms: u64) -> BreakerConfig {
        BreakerConfig {
            failure_threshold: threshold,
            cooldown_base: Duration::from_millis(base_ms),
            cooldown_max: Duration::from_millis(max_ms),
        }
    }

    #[test]
    fn closed_until_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(cfg(3, 10, 1000));
        let t = Duration::from_millis(5);
        b.record_failure(t);
        b.record_failure(t);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.consecutive_failures(), 2);
        b.record_success();
        assert_eq!(b.consecutive_failures(), 0, "success resets the streak");
        b.record_failure(t);
        b.record_failure(t);
        b.record_failure(t);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.retry_at(), Some(t + Duration::from_millis(10)));
    }

    #[test]
    fn open_refuses_until_cooldown_then_half_open_probe() {
        let mut b = CircuitBreaker::new(cfg(1, 20, 1000));
        b.record_failure(Duration::from_millis(100));
        assert!(!b.allow(Duration::from_millis(110)));
        assert_eq!(b.state(), BreakerState::Open);
        // Cooldown elapsed: the allow IS the half-open probe admission.
        assert!(b.allow(Duration::from_millis(120)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Probe success closes and resets backoff.
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(Duration::from_millis(200));
        assert_eq!(
            b.retry_at(),
            Some(Duration::from_millis(220)),
            "backoff restarts at base after a success"
        );
    }

    #[test]
    fn probe_failure_doubles_cooldown_up_to_cap() {
        let mut b = CircuitBreaker::new(cfg(1, 10, 35));
        let mut now = Duration::from_millis(0);
        // Trip 1: 10ms. Trip 2: 20ms. Trip 3: capped at 35ms. Trip 4: 35ms.
        for expected_ms in [10u64, 20, 35, 35] {
            b.record_failure(now);
            assert_eq!(b.state(), BreakerState::Open);
            let until = b.retry_at().unwrap();
            assert_eq!(until, now + Duration::from_millis(expected_ms));
            assert!(!b.allow(until - Duration::from_nanos(1)));
            now = until;
            assert!(b.allow(now), "probe admitted exactly at the deadline");
            assert_eq!(b.state(), BreakerState::HalfOpen);
        }
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn cooldown_schedule_saturates() {
        let c = cfg(1, 10, 100_000);
        assert_eq!(
            CircuitBreaker::cooldown_for(&c, 1),
            Duration::from_millis(10)
        );
        assert_eq!(
            CircuitBreaker::cooldown_for(&c, 4),
            Duration::from_millis(80)
        );
        // Huge trip counts hit the cap instead of overflowing.
        assert_eq!(
            CircuitBreaker::cooldown_for(&c, 1000),
            Duration::from_millis(100_000)
        );
    }
}
