//! `ArcCell`: an `ArcSwap`-style atomic slot for shared immutable values.
//!
//! The build environment is offline and the workspace vendors its few
//! shims, none of which is an atomic-arc crate — so the hot-swap cell is
//! the simple, obviously-correct construction: a `Mutex` around an
//! `Arc<T>`, locked just long enough to clone or replace the pointer.
//! The critical section is a refcount increment (no allocation, no user
//! code, nothing that can panic), so the lock is pure overhead on the
//! order of an uncontended atomic — fine for a serving path whose readers
//! then hold the `Arc` for a whole batch.
//!
//! The visibility guarantee serving relies on: [`ArcCell::load`] returns a
//! complete value that was, at some instant, the current one. A concurrent
//! [`ArcCell::store`] switches subsequent loads to the new value; readers
//! that already loaded keep their `Arc` and finish on the old value, which
//! is freed when the last of them drops it. No reader ever observes a
//! partially-written value — the slot holds a pointer, never the bytes.

use std::sync::{Arc, Mutex};

/// A mutable slot holding an `Arc<T>`, swappable under live readers.
#[derive(Debug)]
pub struct ArcCell<T> {
    slot: Mutex<Arc<T>>,
}

impl<T> ArcCell<T> {
    pub fn new(value: Arc<T>) -> Self {
        Self {
            slot: Mutex::new(value),
        }
    }

    /// Snapshot the current value. The returned handle stays valid (and
    /// unchanged) for as long as the caller holds it, regardless of later
    /// stores.
    pub fn load(&self) -> Arc<T> {
        self.slot.lock().expect("ArcCell poisoned").clone()
    }

    /// Publish a new value. In-flight readers finish on whatever they
    /// loaded; the old value is dropped here if this slot held the last
    /// reference (outside the lock, so a heavy drop never blocks readers).
    pub fn store(&self, value: Arc<T>) {
        drop(self.swap(value));
    }

    /// Publish a new value and return the previous one.
    pub fn swap(&self, value: Arc<T>) -> Arc<T> {
        let mut guard = self.slot.lock().expect("ArcCell poisoned");
        std::mem::replace(&mut *guard, value)
    }

    /// Publish `new` only if the slot still holds the exact `Arc` the
    /// caller read earlier (pointer identity, not value equality — two
    /// equal values rebaked separately are *different* plans for this
    /// check). Returns the replaced value on success, the current value on
    /// failure. This is what lets a background refit detect that someone
    /// else swapped the entry while it was fitting: the candidate was
    /// gated against a plan that is no longer live, so installing it would
    /// publish a stale comparison.
    pub fn compare_and_swap(&self, expected: &Arc<T>, new: Arc<T>) -> Result<Arc<T>, Arc<T>> {
        let mut guard = self.slot.lock().expect("ArcCell poisoned");
        if Arc::ptr_eq(&guard, expected) {
            Ok(std::mem::replace(&mut *guard, new))
        } else {
            Err(guard.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn load_store_swap() {
        let cell = ArcCell::new(Arc::new(1));
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        let old = cell.swap(Arc::new(3));
        assert_eq!(*old, 2);
        assert_eq!(*cell.load(), 3);
    }

    #[test]
    fn readers_keep_their_snapshot_across_stores() {
        let cell = ArcCell::new(Arc::new(vec![1, 2, 3]));
        let snapshot = cell.load();
        cell.store(Arc::new(vec![9]));
        assert_eq!(*snapshot, vec![1, 2, 3], "held handle must not move");
        assert_eq!(*cell.load(), vec![9]);
    }

    #[test]
    fn compare_and_swap_is_pointer_identity() {
        let first = Arc::new(10);
        let cell = ArcCell::new(first.clone());
        // Same value, different allocation: must NOT match.
        let lookalike = Arc::new(10);
        let current = cell.compare_and_swap(&lookalike, Arc::new(99)).unwrap_err();
        assert!(Arc::ptr_eq(&current, &first), "CAS must report the holder");
        assert_eq!(*cell.load(), 10);
        // The genuinely held Arc matches and is returned.
        let old = cell.compare_and_swap(&first, Arc::new(11)).unwrap();
        assert!(Arc::ptr_eq(&old, &first));
        assert_eq!(*cell.load(), 11);
        // A second CAS against the stale snapshot loses.
        assert!(cell.compare_and_swap(&first, Arc::new(12)).is_err());
        assert_eq!(*cell.load(), 11);
    }

    #[test]
    fn racing_cas_admits_exactly_one_winner() {
        let base = Arc::new(0usize);
        let cell = ArcCell::new(base.clone());
        let wins = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for i in 1..=8 {
                let base = base.clone();
                let cell = &cell;
                let wins = &wins;
                s.spawn(move || {
                    if cell.compare_and_swap(&base, Arc::new(i)).is_ok() {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 1, "exactly one CAS wins");
        assert_ne!(*cell.load(), 0, "the winner's value is installed");
    }

    /// Hammer load/store from threads: every loaded value must be one of
    /// the two complete payloads, never a mix (the "no torn value" claim
    /// at the cell level).
    #[test]
    fn concurrent_loads_see_complete_values() {
        let a: Arc<Vec<u64>> = Arc::new(vec![7; 64]);
        let b: Arc<Vec<u64>> = Arc::new(vec![13; 64]);
        let cell = ArcCell::new(a.clone());
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    while !stop.load(Ordering::Relaxed) {
                        let v = cell.load();
                        let first = v[0];
                        assert!(first == 7 || first == 13);
                        assert!(v.iter().all(|&x| x == first), "torn value observed");
                    }
                });
            }
            for i in 0..2000 {
                cell.store(if i % 2 == 0 { b.clone() } else { a.clone() });
            }
            stop.store(true, Ordering::Relaxed);
        });
    }
}
