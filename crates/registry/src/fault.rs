//! Deterministic fault injection for the refit pipeline.
//!
//! Every failure path the pipeline claims to survive — a fit that panics,
//! a fit that blows its deadline, wire bytes corrupted between bake and
//! install, a telemetry batch that arrives poisoned — can be triggered at
//! an **exact job index** (and attempt number, so a retry can be made to
//! fail differently than the first try). Faults are one-shot: each
//! armed injection fires once and disarms, which keeps "job 3's first
//! attempt panics, its retry succeeds" expressible as two lines of test
//! setup.
//!
//! The injector is `Clone` + cheap (an `Arc` around the armed sets);
//! [`FaultInjector::none`] is the production default and costs four
//! mutex-free `HashSet::is_empty`-style checks per job.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
struct Armed {
    /// `(job, attempt)` pairs whose fit call panics.
    fit_panics: Mutex<HashSet<(u64, u32)>>,
    /// `(job, attempt)` pairs whose fit is treated as having hung past
    /// the deadline.
    timeouts: Mutex<HashSet<(u64, u32)>>,
    /// `(job, attempt)` pairs whose candidate wire bytes are corrupted
    /// after the gate, before the install parse.
    corrupt: Mutex<HashSet<(u64, u32)>>,
    /// Job indices whose submitted batch is poisoned (every measurement
    /// NaN) before quarantine sees it.
    poison: Mutex<HashSet<u64>>,
    /// Total faults actually fired.
    fired: AtomicU64,
}

/// Deterministic fault-injection hook threaded through
/// [`crate::RefitPipeline`]. See the module docs; all methods are usable
/// from any thread.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    armed: Arc<Armed>,
}

impl FaultInjector {
    /// An injector with nothing armed — the production default.
    pub fn none() -> Self {
        Self::default()
    }

    /// Arm a panic inside the fit call of `job`'s attempt `attempt`
    /// (attempts are 0-based; retries increment).
    pub fn fit_panic_at(&self, job: u64, attempt: u32) -> &Self {
        self.armed
            .fit_panics
            .lock()
            .expect("fault set poisoned")
            .insert((job, attempt));
        self
    }

    /// Arm a deadline blow-through for `job`'s attempt `attempt`.
    pub fn timeout_at(&self, job: u64, attempt: u32) -> &Self {
        self.armed
            .timeouts
            .lock()
            .expect("fault set poisoned")
            .insert((job, attempt));
        self
    }

    /// Arm wire-byte corruption for the candidate produced by `job`'s
    /// attempt `attempt`.
    pub fn corrupt_bytes_at(&self, job: u64, attempt: u32) -> &Self {
        self.armed
            .corrupt
            .lock()
            .expect("fault set poisoned")
            .insert((job, attempt));
        self
    }

    /// Arm batch poisoning for `job`: every measurement in the submitted
    /// batch is replaced with NaN before quarantine runs.
    pub fn poison_batch_at(&self, job: u64) -> &Self {
        self.armed
            .poison
            .lock()
            .expect("fault set poisoned")
            .insert(job);
        self
    }

    /// Faults fired so far.
    pub fn fired(&self) -> u64 {
        self.armed.fired.load(Ordering::Relaxed)
    }

    fn take(&self, set: &Mutex<HashSet<(u64, u32)>>, job: u64, attempt: u32) -> bool {
        let hit = set
            .lock()
            .expect("fault set poisoned")
            .remove(&(job, attempt));
        if hit {
            self.armed.fired.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    pub(crate) fn take_fit_panic(&self, job: u64, attempt: u32) -> bool {
        self.take(&self.armed.fit_panics, job, attempt)
    }

    pub(crate) fn take_timeout(&self, job: u64, attempt: u32) -> bool {
        self.take(&self.armed.timeouts, job, attempt)
    }

    /// If armed, overwrite the head of `bytes` so the wire parse fails
    /// (the magic is destroyed; the framing is intact enough that the
    /// failure is a parse error, not a panic).
    pub(crate) fn corrupt(&self, job: u64, attempt: u32, bytes: &mut [u8]) -> bool {
        if !self.take(&self.armed.corrupt, job, attempt) {
            return false;
        }
        for b in bytes.iter_mut().take(4) {
            *b = 0xFF;
        }
        true
    }

    /// If armed, poison every measurement of `batch` (NaN), as a broken
    /// telemetry producer would.
    pub(crate) fn take_poison(&self, job: u64, batch: &mut [(Vec<f64>, f64)]) -> bool {
        let hit = self
            .armed
            .poison
            .lock()
            .expect("fault set poisoned")
            .remove(&job);
        if hit {
            self.armed.fired.fetch_add(1, Ordering::Relaxed);
            for (_, y) in batch.iter_mut() {
                *y = f64::NAN;
            }
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_once_at_exact_indices() {
        let f = FaultInjector::none();
        f.fit_panic_at(3, 0).timeout_at(3, 1);
        assert!(!f.take_fit_panic(2, 0), "wrong job must not fire");
        assert!(!f.take_fit_panic(3, 1), "wrong attempt must not fire");
        assert!(f.take_fit_panic(3, 0));
        assert!(!f.take_fit_panic(3, 0), "one-shot: second take is empty");
        assert!(f.take_timeout(3, 1));
        assert_eq!(f.fired(), 2);
    }

    #[test]
    fn corrupt_destroys_the_magic() {
        let f = FaultInjector::none();
        f.corrupt_bytes_at(0, 0);
        let mut bytes = vec![b'C', b'P', b'R', b'2', 9, 9];
        assert!(f.corrupt(0, 0, &mut bytes));
        assert_eq!(&bytes[..4], &[0xFF; 4]);
        assert_eq!(&bytes[4..], &[9, 9], "payload beyond the magic is kept");
        let mut untouched = vec![1u8, 2, 3, 4];
        assert!(!f.corrupt(0, 0, &mut untouched));
        assert_eq!(untouched, vec![1, 2, 3, 4]);
    }

    #[test]
    fn poison_nans_every_measurement() {
        let f = FaultInjector::none();
        f.poison_batch_at(7);
        let mut batch = vec![(vec![1.0], 2.0), (vec![3.0], 4.0)];
        assert!(f.take_poison(7, &mut batch));
        assert!(batch.iter().all(|(_, y)| y.is_nan()));
        assert!(
            batch.iter().all(|(x, _)| x.iter().all(|v| v.is_finite())),
            "poison hits measurements, not configurations"
        );
        let mut clean = vec![(vec![1.0], 2.0)];
        assert!(!f.take_poison(8, &mut clean));
        assert_eq!(clean[0].1, 2.0);
    }

    #[test]
    fn clones_share_the_armed_sets() {
        let f = FaultInjector::none();
        let g = f.clone();
        f.timeout_at(1, 0);
        assert!(g.take_timeout(1, 0), "clone must see faults armed later");
        assert_eq!(f.fired(), 1);
    }
}
