//! The registry key: one fitted model per (application × machine × metric).

use std::fmt;

/// Identifies one model in a served fleet. The paper's deployment story is
/// a model per application benchmark per machine per measured metric
/// (execution time in the paper; energy/bandwidth in general), so the key
/// is that naming triple verbatim.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelId {
    app: String,
    machine: String,
    metric: String,
}

impl ModelId {
    pub fn new(
        app: impl Into<String>,
        machine: impl Into<String>,
        metric: impl Into<String>,
    ) -> Self {
        Self {
            app: app.into(),
            machine: machine.into(),
            metric: metric.into(),
        }
    }

    pub fn app(&self) -> &str {
        &self.app
    }

    pub fn machine(&self) -> &str {
        &self.machine
    }

    pub fn metric(&self) -> &str {
        &self.metric
    }

    /// Stable 64-bit hash (FNV-1a over the three components with
    /// separators) used for shard selection. Deliberately *not* the std
    /// `Hash` impl: `RandomState` is seeded per process, and a stable
    /// shard assignment keeps behavior reproducible across runs and
    /// independent of hasher churn in the standard library.
    pub(crate) fn shard_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for part in [&self.app, &self.machine, &self.metric] {
            for &b in part.as_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(PRIME);
            }
            // Separator byte: ("ab", "c") must not collide with ("a", "bc").
            h = (h ^ 0x1f).wrapping_mul(PRIME);
        }
        h
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.app, self.machine, self.metric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_accessors() {
        let id = ModelId::new("gemm", "stampede2", "time");
        assert_eq!(id.to_string(), "gemm/stampede2/time");
        assert_eq!(id.app(), "gemm");
        assert_eq!(id.machine(), "stampede2");
        assert_eq!(id.metric(), "time");
    }

    #[test]
    fn shard_hash_separates_components() {
        let a = ModelId::new("ab", "c", "t");
        let b = ModelId::new("a", "bc", "t");
        assert_ne!(a.shard_hash(), b.shard_hash());
        // Stable across clones (and, by construction, across processes).
        assert_eq!(a.shard_hash(), a.clone().shard_hash());
    }
}
