//! The registry key: one fitted model per (application × machine × metric).

use std::fmt;

/// Identifies one model in a served fleet. The paper's deployment story is
/// a model per application benchmark per machine per measured metric
/// (execution time in the paper; energy/bandwidth in general), so the key
/// is that naming triple verbatim.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelId {
    app: String,
    machine: String,
    metric: String,
}

impl ModelId {
    pub fn new(
        app: impl Into<String>,
        machine: impl Into<String>,
        metric: impl Into<String>,
    ) -> Self {
        Self {
            app: app.into(),
            machine: machine.into(),
            metric: metric.into(),
        }
    }

    pub fn app(&self) -> &str {
        &self.app
    }

    pub fn machine(&self) -> &str {
        &self.machine
    }

    pub fn metric(&self) -> &str {
        &self.metric
    }

    /// Flat store key for the durability layer: the three components
    /// joined with the unit-separator byte (`\x1f`), which [`Self::new`]
    /// callers never put in real app/machine/metric names — and which,
    /// unlike `/`, no filesystem-facing name is allowed to contain
    /// anyway. Round-trips through [`Self::from_store_key`].
    pub fn store_key(&self) -> String {
        format!("{}\u{1f}{}\u{1f}{}", self.app, self.machine, self.metric)
    }

    /// Decode a [`Self::store_key`]; `None` if the key does not have
    /// exactly three components (a foreign file in the store directory).
    pub fn from_store_key(key: &str) -> Option<Self> {
        let mut parts = key.split('\u{1f}');
        let id = Self {
            app: parts.next()?.to_string(),
            machine: parts.next()?.to_string(),
            metric: parts.next()?.to_string(),
        };
        parts.next().is_none().then_some(id)
    }

    /// Stable 64-bit hash (FNV-1a over the three components with
    /// separators) used for shard selection. Deliberately *not* the std
    /// `Hash` impl: `RandomState` is seeded per process, and a stable
    /// shard assignment keeps behavior reproducible across runs and
    /// independent of hasher churn in the standard library.
    pub(crate) fn shard_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for part in [&self.app, &self.machine, &self.metric] {
            for &b in part.as_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(PRIME);
            }
            // Separator byte: ("ab", "c") must not collide with ("a", "bc").
            h = (h ^ 0x1f).wrapping_mul(PRIME);
        }
        h
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.app, self.machine, self.metric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_accessors() {
        let id = ModelId::new("gemm", "stampede2", "time");
        assert_eq!(id.to_string(), "gemm/stampede2/time");
        assert_eq!(id.app(), "gemm");
        assert_eq!(id.machine(), "stampede2");
        assert_eq!(id.metric(), "time");
    }

    #[test]
    fn store_key_roundtrips_and_rejects_malformed() {
        let id = ModelId::new("gemm", "stampede2", "time");
        assert_eq!(ModelId::from_store_key(&id.store_key()), Some(id));
        assert_eq!(ModelId::from_store_key("only-two\u{1f}parts"), None);
        assert_eq!(ModelId::from_store_key("a\u{1f}b\u{1f}c\u{1f}d"), None);
        // Empty components are legal (ids don't forbid them) and must
        // still round-trip unambiguously.
        let odd = ModelId::new("", "m", "");
        assert_eq!(ModelId::from_store_key(&odd.store_key()), Some(odd));
    }

    #[test]
    fn shard_hash_separates_components() {
        let a = ModelId::new("ab", "c", "t");
        let b = ModelId::new("a", "bc", "t");
        assert_ne!(a.shard_hash(), b.shard_hash());
        // Stable across clones (and, by construction, across processes).
        assert_eq!(a.shard_hash(), a.clone().shard_hash());
    }
}
