//! Circuit-breaker proptests: arbitrary success/failure/probe sequences
//! driven against an independent reference model of the closed → open →
//! half-open machine, including the determinism of the exponential
//! backoff schedule. The breaker under test is clock-driven (logical
//! [`Duration`]s), so the reference can replay the exact same schedule.

use cpr_registry::{BreakerConfig, BreakerState, CircuitBreaker};
use proptest::prelude::*;
use std::time::Duration;

/// Straight-line reference implementation of the documented transition
/// rules, written against the spec rather than the code under test.
#[derive(Debug, Clone)]
struct Reference {
    cfg: BreakerConfig,
    state: BreakerState,
    streak: u32,
    trips: u32,
    open_until: Duration,
}

impl Reference {
    fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            state: BreakerState::Closed,
            streak: 0,
            trips: 0,
            open_until: Duration::ZERO,
        }
    }

    /// The documented schedule: `cooldown_base · 2^(trip-1)`, capped.
    fn cooldown(&self, trip: u32) -> Duration {
        let mut d = self.cfg.cooldown_base;
        for _ in 1..trip.min(40) {
            d = d.saturating_mul(2);
            if d >= self.cfg.cooldown_max {
                return self.cfg.cooldown_max;
            }
        }
        d.min(self.cfg.cooldown_max)
    }

    fn trip(&mut self, now: Duration) {
        self.trips += 1;
        self.open_until = now + self.cooldown(self.trips);
        self.state = BreakerState::Open;
    }

    fn allow(&mut self, now: Duration) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now >= self.open_until {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    fn success(&mut self) {
        self.state = BreakerState::Closed;
        self.streak = 0;
        self.trips = 0;
    }

    fn failure(&mut self, now: Duration) {
        self.streak += 1;
        match self.state {
            BreakerState::Closed => {
                if self.streak >= self.cfg.failure_threshold {
                    self.trip(now);
                }
            }
            BreakerState::HalfOpen | BreakerState::Open => self.trip(now),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of allow/success/failure calls at monotonically
    /// advancing clock values keeps the breaker and the reference in
    /// lockstep: same state, same streak, same admissions, same retry
    /// deadlines.
    #[test]
    fn breaker_matches_reference_model(
        threshold in 1u32..5,
        base_ms in 1u64..50,
        cap_mul in 1u64..20,
        ops in proptest::collection::vec((0u8..3, 0u64..40), 0..60),
    ) {
        let cfg = BreakerConfig {
            failure_threshold: threshold,
            cooldown_base: Duration::from_millis(base_ms),
            cooldown_max: Duration::from_millis(base_ms * cap_mul),
        };
        let mut breaker = CircuitBreaker::new(cfg);
        let mut reference = Reference::new(cfg);
        let mut now = Duration::ZERO;
        for (op, dt_ms) in ops {
            now += Duration::from_millis(dt_ms);
            match op {
                0 => {
                    let got = breaker.allow(now);
                    let want = reference.allow(now);
                    prop_assert_eq!(got, want, "allow diverged at {:?}", now);
                }
                1 => {
                    breaker.record_success();
                    reference.success();
                }
                _ => {
                    breaker.record_failure(now);
                    reference.failure(now);
                }
            }
            prop_assert_eq!(breaker.state(), reference.state, "state diverged at {:?}", now);
            prop_assert_eq!(
                breaker.consecutive_failures(),
                reference.streak,
                "failure streak diverged at {:?}", now
            );
            let want_retry = match reference.state {
                BreakerState::Open => Some(reference.open_until),
                _ => None,
            };
            prop_assert_eq!(breaker.retry_at(), want_retry, "retry deadline diverged at {:?}", now);
        }
    }

    /// The backoff schedule is a pure function of the trip count: replay
    /// any failure sequence twice and the open deadlines are identical,
    /// and each consecutive trip's cooldown is double the previous one
    /// until the cap.
    #[test]
    fn backoff_schedule_is_deterministic_and_doubling(
        threshold in 1u32..4,
        base_ms in 1u64..20,
        trips in 1usize..12,
    ) {
        let cfg = BreakerConfig {
            failure_threshold: threshold,
            cooldown_base: Duration::from_millis(base_ms),
            cooldown_max: Duration::from_millis(base_ms * 100),
        };
        let run = |cfg: BreakerConfig| {
            let mut b = CircuitBreaker::new(cfg);
            let mut now = Duration::ZERO;
            let mut deadlines = Vec::new();
            for _ in 0..trips {
                // Fail until the breaker opens, then jump the clock to the
                // probe time and fail the probe — the next trip doubles.
                while b.retry_at().is_none() {
                    b.record_failure(now);
                }
                let until = b.retry_at().unwrap();
                deadlines.push(until - now);
                now = until;
                prop_assert!(b.allow(now), "probe must be admitted at the deadline");
                prop_assert_eq!(b.state(), BreakerState::HalfOpen);
            }
            deadlines
        };
        let first = run(cfg);
        let second = run(cfg);
        prop_assert_eq!(&first, &second, "replaying the sequence must give the same schedule");
        for (i, pair) in first.windows(2).enumerate() {
            let expect = pair[0].saturating_mul(2).min(cfg.cooldown_max);
            prop_assert_eq!(
                pair[1], expect,
                "trip {} cooldown must double (capped): {:?}", i + 2, &first
            );
        }
        // A success resets the exponent back to the base cooldown.
        let mut b = CircuitBreaker::new(cfg);
        let mut now = Duration::ZERO;
        while b.retry_at().is_none() {
            b.record_failure(now);
        }
        now = b.retry_at().unwrap();
        prop_assert!(b.allow(now));
        b.record_success();
        while b.retry_at().is_none() {
            b.record_failure(now);
        }
        prop_assert_eq!(b.retry_at().unwrap() - now, cfg.cooldown_base);
    }
}
