//! Deterministic fault-injection suite: every failure mode the pipeline
//! claims to contain — fit panics, deadline blow-throughs, corrupt
//! candidate bytes, poisoned telemetry, repeated failure tripping the
//! circuit breaker — is triggered at exact job/attempt coordinates and
//! the containment contract is pinned: the registry never stops serving,
//! and what it serves stays bitwise-equal to the last gated install.

mod common;

use cpr_core::{CprBuilder, Dataset, StreamingCpr};
use cpr_grid::{ParamSpace, ParamSpec};
use cpr_registry::{
    BreakerConfig, BreakerState, FaultInjector, ModelId, ModelRegistry, PipelineConfig,
    RefitPipeline,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn space() -> ParamSpace {
    ParamSpace::new(vec![
        ParamSpec::log("m", 32.0, 2048.0),
        ParamSpec::log("n", 32.0, 2048.0),
    ])
}

fn telemetry(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Dataset::new();
    for _ in 0..n {
        let m = 32.0 * 64.0_f64.powf(rng.gen::<f64>());
        let nn = 32.0 * 64.0_f64.powf(rng.gen::<f64>());
        data.push(vec![m, nn], 1e-4 * m.powf(1.3) * nn.powf(0.7));
    }
    data
}

fn trainer(seed: u64) -> StreamingCpr {
    let builder = CprBuilder::new(space())
        .cells_per_dim(6)
        .rank(2)
        .regularization(1e-7)
        .seed(seed);
    StreamingCpr::fit(&builder, &telemetry(80, seed)).unwrap()
}

fn probe_points(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            vec![
                32.0 * 64.0_f64.powf(rng.gen::<f64>()),
                32.0 * 64.0_f64.powf(rng.gen::<f64>()),
            ]
        })
        .collect()
}

fn quick_cfg() -> PipelineConfig {
    PipelineConfig {
        workers: 2,
        retry_backoff: Duration::from_millis(1),
        retry_backoff_max: Duration::from_millis(10),
        ..PipelineConfig::default()
    }
}

/// The served-state invariant every fault test ends on: the registry
/// serves exactly the committed trainer's model, bitwise.
fn assert_serves_committed(registry: &ModelRegistry, pipeline: &RefitPipeline, id: &ModelId) {
    let committed = pipeline.tracked_model(id).expect("still tracked");
    for x in probe_points(32, 999) {
        assert_eq!(
            registry.predict(id, &x).unwrap().to_bits(),
            committed.predict(&x).to_bits(),
            "registry must serve the committed model bitwise at {x:?}"
        );
    }
}

#[test]
fn fit_panic_is_contained_and_the_retry_succeeds() {
    let faults = FaultInjector::none();
    faults.fit_panic_at(0, 0); // first submission, first attempt
    let registry = Arc::new(ModelRegistry::new());
    let pipeline = RefitPipeline::with_faults(registry.clone(), quick_cfg(), faults.clone());
    let id = ModelId::new("gemm", "stampede2", "time");
    pipeline.track(id.clone(), trainer(1));

    let receipt = pipeline.submit(&id, &telemetry(120, 10)).unwrap();
    assert_eq!(receipt.job, 0);
    pipeline.wait_idle();

    let stats = pipeline.stats();
    assert_eq!(stats.panics, 1, "the injected panic must be recorded");
    assert_eq!(stats.retries, 1, "the panicked attempt must be retried");
    assert_eq!(
        stats.swapped + stats.gate_rejected,
        1,
        "the retry must terminally resolve the job: {stats:?}"
    );
    assert_eq!(stats.dropped_jobs, 0);
    assert_eq!(faults.fired(), 1);
    assert_serves_committed(&registry, &pipeline, &id);
}

#[test]
fn exhausted_timeouts_drop_the_job_and_keep_the_original_serving() {
    let faults = FaultInjector::none();
    // Every attempt the retry budget allows (max_retries = 2) times out.
    faults.timeout_at(0, 0).timeout_at(0, 1).timeout_at(0, 2);
    let registry = Arc::new(ModelRegistry::new());
    let pipeline = RefitPipeline::with_faults(registry.clone(), quick_cfg(), faults.clone());
    let id = ModelId::new("spmv", "frontier", "time");
    let original = trainer(2).model().clone();
    pipeline.track(id.clone(), trainer(2));

    pipeline.submit(&id, &telemetry(100, 20)).unwrap();
    pipeline.wait_idle();

    let stats = pipeline.stats();
    assert_eq!(stats.timeouts, 3);
    assert_eq!(stats.retries, 2);
    assert_eq!(stats.dropped_jobs, 1, "retry budget exhausted: job dropped");
    assert_eq!(stats.swapped, 0);
    assert_eq!(faults.fired(), 3);
    for x in probe_points(32, 21) {
        assert_eq!(
            registry.predict(&id, &x).unwrap().to_bits(),
            original.predict(&x).to_bits(),
            "a fully failed refit must leave the original plan serving"
        );
    }
}

#[test]
fn corrupt_candidate_bytes_are_rejected_not_served() {
    let faults = FaultInjector::none();
    faults.corrupt_bytes_at(0, 0);
    let registry = Arc::new(ModelRegistry::new());
    let cfg = PipelineConfig {
        max_retries: 0,
        ..quick_cfg()
    };
    let pipeline = RefitPipeline::with_faults(registry.clone(), cfg, faults);
    let id = ModelId::new("fft", "fugaku", "time");
    let original = trainer(3).model().clone();
    pipeline.track(id.clone(), trainer(3));

    pipeline.submit(&id, &telemetry(100, 30)).unwrap();
    pipeline.wait_idle();

    let stats = pipeline.stats();
    assert_eq!(stats.corrupt_installs, 1);
    assert_eq!(stats.swapped, 0);
    assert_eq!(stats.dropped_jobs, 1, "no retries: the job is dropped");
    for x in probe_points(32, 31) {
        assert_eq!(
            registry.predict(&id, &x).unwrap().to_bits(),
            original.predict(&x).to_bits(),
            "corrupt bytes must never be installed"
        );
    }
}

#[test]
fn corrupt_first_attempt_retries_clean_and_swaps() {
    let faults = FaultInjector::none();
    faults.corrupt_bytes_at(0, 0); // only the first attempt is corrupted
    let registry = Arc::new(ModelRegistry::new());
    // A huge slack makes the gate vacuous-but-armed, so the retry's
    // terminal state is deterministically a swap.
    let cfg = PipelineConfig {
        gate_slack: 1e6,
        ..quick_cfg()
    };
    let pipeline = RefitPipeline::with_faults(registry.clone(), cfg, faults);
    let id = ModelId::new("stencil", "stampede2", "energy");
    pipeline.track(id.clone(), trainer(4));

    pipeline.submit(&id, &telemetry(100, 40)).unwrap();
    pipeline.wait_idle();

    let stats = pipeline.stats();
    assert_eq!(stats.corrupt_installs, 1);
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.swapped, 1, "the clean retry must install: {stats:?}");
    assert_serves_committed(&registry, &pipeline, &id);
}

#[test]
fn poisoned_batches_are_fully_quarantined() {
    let faults = FaultInjector::none();
    faults.poison_batch_at(0);
    let registry = Arc::new(ModelRegistry::new());
    let pipeline = RefitPipeline::with_faults(registry.clone(), quick_cfg(), faults.clone());
    let id = ModelId::new("sort", "frontier", "time");
    let original = trainer(5).model().clone();
    pipeline.track(id.clone(), trainer(5));

    let batch = telemetry(50, 50);
    let receipt = pipeline.submit(&id, &batch).unwrap();
    assert_eq!(receipt.accepted, 0, "every poisoned sample is quarantined");
    assert_eq!(receipt.quarantined, 50);
    assert_eq!(faults.fired(), 1);
    pipeline.wait_idle();

    let stats = pipeline.stats();
    assert_eq!(stats.quarantined, 50);
    assert_eq!(stats.swapped, 0, "nothing survived to refit on");
    for x in probe_points(16, 51) {
        assert_eq!(
            registry.predict(&id, &x).unwrap().to_bits(),
            original.predict(&x).to_bits()
        );
    }
}

#[test]
fn repeated_failures_trip_the_breaker_and_a_probe_closes_it() {
    let faults = FaultInjector::none();
    // Jobs 0 and 1 panic on their only attempt; job 2 is clean.
    faults.fit_panic_at(0, 0).fit_panic_at(1, 0);
    let registry = Arc::new(ModelRegistry::new());
    let cfg = PipelineConfig {
        workers: 1, // serialize so the failure order is deterministic
        max_retries: 0,
        gate_slack: 1e6, // the probe's terminal state must be a swap
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown_base: Duration::from_millis(150),
            cooldown_max: Duration::from_secs(1),
        },
        ..quick_cfg()
    };
    let pipeline = RefitPipeline::with_faults(registry.clone(), cfg, faults);
    let id = ModelId::new("kripke", "fugaku", "time");
    pipeline.track(id.clone(), trainer(6));

    for seed in 60..63 {
        pipeline.submit(&id, &telemetry(80, seed)).unwrap();
    }
    pipeline.wait_idle();

    let stats = pipeline.stats();
    assert_eq!(stats.panics, 2);
    assert_eq!(stats.dropped_jobs, 2);
    assert!(
        stats.deferred >= 1,
        "job 2 must have been deferred by the open breaker: {stats:?}"
    );
    assert_eq!(
        stats.swapped, 1,
        "the half-open probe must run job 2 and succeed: {stats:?}"
    );

    let health = pipeline.health(&id).unwrap();
    assert_eq!(
        health.breaker,
        BreakerState::Closed,
        "probe success must close the breaker"
    );
    assert_eq!(health.consecutive_failures, 0);
    assert_serves_committed(&registry, &pipeline, &id);
}

/// The headline claim: a storm of every fault type across a small fleet,
/// with reader threads hammering the registry throughout — serving is
/// never interrupted, every value is finite, and the end state is
/// bitwise the committed trainers' models.
#[test]
fn fault_storm_never_interrupts_serving() {
    let faults = FaultInjector::none();
    // A mix across job indices: panics, timeouts, corruption (first
    // attempts — retries recover), one poisoned batch, and one job whose
    // entire retry budget times out (dropped).
    faults.fit_panic_at(0, 0).fit_panic_at(3, 0);
    faults.timeout_at(1, 0);
    faults.corrupt_bytes_at(4, 0);
    faults.poison_batch_at(5);
    faults.timeout_at(6, 0).timeout_at(6, 1).timeout_at(6, 2);
    let registry = Arc::new(ModelRegistry::new());
    let cfg = PipelineConfig {
        queue_capacity: 64,
        breaker: BreakerConfig {
            failure_threshold: 10, // keep the breaker out of this test
            ..BreakerConfig::default()
        },
        ..quick_cfg()
    };
    let pipeline = RefitPipeline::with_faults(registry.clone(), cfg, faults);
    let ids: Vec<ModelId> = (0..3)
        .map(|i| ModelId::new(format!("storm{i}"), "m", "time"))
        .collect();
    for (i, id) in ids.iter().enumerate() {
        pipeline.track(id.clone(), trainer(70 + i as u64));
    }

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|r| {
            let registry = registry.clone();
            let ids = ids.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let points = probe_points(24, 400 + r);
                while !stop.load(Ordering::Relaxed) {
                    for (k, x) in points.iter().enumerate() {
                        let id = &ids[(r as usize + k) % ids.len()];
                        let y = registry
                            .predict(id, x)
                            .expect("serving must never be interrupted by faults");
                        assert!(y.is_finite());
                    }
                }
            })
        })
        .collect();

    let mut empty_batches = 0u64;
    for j in 0..12u64 {
        let id = &ids[(j % 3) as usize];
        let receipt = pipeline.submit(id, &telemetry(80, 500 + j)).unwrap();
        if receipt.accepted == 0 {
            empty_batches += 1;
        }
    }
    pipeline.wait_idle();
    stop.store(true, Ordering::Relaxed);
    for h in readers {
        h.join().unwrap();
    }

    let stats = pipeline.stats();
    assert_eq!(stats.panics, 2);
    assert_eq!(stats.timeouts, 4);
    assert_eq!(stats.corrupt_installs, 1);
    assert_eq!(empty_batches, 1, "the poisoned batch queues nothing");
    assert_eq!(stats.dropped_jobs, 1, "only job 6 exhausts its retries");
    assert_eq!(stats.queued, 0);
    assert_eq!(stats.in_flight, 0);
    assert_eq!(
        stats.swapped + stats.gate_rejected + stats.dropped_jobs + empty_batches,
        stats.submitted,
        "every submission must terminally resolve: {stats:?}"
    );
    for id in &ids {
        assert_serves_committed(&registry, &pipeline, id);
    }
}
