//! Crash-safe fleet durability, end to end: the refit pipeline persists
//! every gated swap to the snapshot store and logs every submitted batch
//! to the telemetry WAL, so a restart can (1) restore the fleet exactly
//! as of the last durable generation via [`ModelRegistry::restore`],
//! (2) re-attach trainers with [`RefitPipeline::track_restored`] +
//! [`StreamingCpr::resume`], and (3) replay un-absorbed WAL batches with
//! [`RefitPipeline::replay`]. A registry-level kill-point sweep (the IO
//! twin of `tests/fault_injection.rs`) crashes the filesystem at every
//! mutating-op index of a deterministic scenario and asserts recovery
//! always yields a complete, parseable, durable fleet — and that the
//! surviving process kept serving while its disk was dead.

use cpr_core::{serialize, CprBuilder, Dataset, StreamingCpr};
use cpr_grid::{ParamSpace, ParamSpec};
use cpr_registry::{BreakerConfig, ModelId, ModelRegistry, PipelineConfig, RefitPipeline};
use cpr_store::{Fault, FaultFs, FleetStore, MemFs, WalLimits};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn space() -> ParamSpace {
    ParamSpace::new(vec![
        ParamSpec::log("m", 32.0, 2048.0),
        ParamSpec::log("n", 32.0, 2048.0),
    ])
}

fn telemetry(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Dataset::new();
    for _ in 0..n {
        let m = 32.0 * 64.0_f64.powf(rng.gen::<f64>());
        let nn = 32.0 * 64.0_f64.powf(rng.gen::<f64>());
        data.push(vec![m, nn], 1e-4 * m.powf(1.3) * nn.powf(0.7));
    }
    data
}

fn trainer(seed: u64) -> StreamingCpr {
    let builder = CprBuilder::new(space())
        .cells_per_dim(6)
        .rank(2)
        .regularization(1e-7)
        .seed(seed);
    StreamingCpr::fit(&builder, &telemetry(80, seed)).unwrap()
}

fn probe_points(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            vec![
                32.0 * 64.0_f64.powf(rng.gen::<f64>()),
                32.0 * 64.0_f64.powf(rng.gen::<f64>()),
            ]
        })
        .collect()
}

/// One worker so the (submit → refit → persist) filesystem-op sequence
/// is deterministic for the kill-point sweep.
fn serial_cfg() -> PipelineConfig {
    PipelineConfig {
        workers: 1,
        retry_backoff: Duration::from_millis(1),
        retry_backoff_max: Duration::from_millis(10),
        ..PipelineConfig::default()
    }
}

/// Restore the fleet from the store into a fresh registry + pipeline and
/// re-attach a resumed trainer per restored model. Deliberately does NOT
/// replay the WAL — callers assert on the restored (pre-replay) state
/// first, then call [`RefitPipeline::replay`] themselves, because replay
/// queues refits that can legitimately swap models at any moment after.
fn restore_fleet(store: Arc<FleetStore>) -> (Arc<ModelRegistry>, RefitPipeline) {
    let registry = Arc::new(ModelRegistry::new());
    let report = registry.restore(&store).expect("restore must succeed");
    assert!(
        report.skipped.is_empty(),
        "a verified snapshot store never yields unparseable models: {:?}",
        report.skipped
    );
    let pipeline = RefitPipeline::with_store(registry.clone(), serial_cfg(), store.clone());
    let snap = store.snapshots().load().unwrap();
    for id in &report.restored {
        let bytes = snap
            .get(&id.store_key())
            .expect("restored id must be in the snapshot")
            .to_vec();
        let model = serialize::from_bytes(&bytes).unwrap();
        pipeline.track_restored(id.clone(), StreamingCpr::resume(model).unwrap());
    }
    (registry, pipeline)
}

#[test]
fn persist_on_swap_then_restore_and_replay_roundtrip() {
    let store = Arc::new(FleetStore::open(Arc::new(MemFs::new())).unwrap());
    let registry = Arc::new(ModelRegistry::new());
    let pipeline = RefitPipeline::with_store(registry.clone(), serial_cfg(), store.clone());
    let id = ModelId::new("gemm", "stampede2", "time");
    pipeline.track(id.clone(), trainer(1));

    for seed in 10..14 {
        pipeline.submit(&id, &telemetry(120, seed)).unwrap();
    }
    pipeline.wait_idle();

    let stats = pipeline.stats();
    assert_eq!(stats.wal_appends, 4, "every batch logged before queueing");
    assert_eq!(stats.wal_append_failed, 0);
    assert_eq!(
        stats.swapped,
        stats.persisted + stats.persist_failed,
        "every gated swap must resolve its persist: {stats:?}"
    );
    assert_eq!(stats.persist_failed, 0, "MemFs never fails: {stats:?}");
    assert!(stats.persisted >= 1, "at least one swap must persist");
    // Logged batches either compacted (absorbed into a durable snapshot)
    // or still pending in the log — none invented, none lost.
    let in_log = store.wal().replay().unwrap().entries.len() as u64;
    assert_eq!(in_log + stats.compacted, stats.wal_appends);

    // Health reports the durable generation the model reached.
    let health = pipeline.health(&id).unwrap();
    assert_eq!(
        health.durable_generation,
        Some(store.snapshots().generation())
    );

    // What the live registry serves right now == the last durable bytes.
    let probes = probe_points(32, 77);
    let served_before: Vec<u64> = probes
        .iter()
        .map(|x| registry.predict(&id, x).unwrap().to_bits())
        .collect();
    pipeline.shutdown();
    drop(registry);

    // "Restart": fresh registry + pipeline over the same store.
    let (registry2, pipeline2) = restore_fleet(store.clone());
    assert_eq!(registry2.ids(), vec![id.clone()]);
    let served_after: Vec<u64> = probes
        .iter()
        .map(|x| registry2.predict(&id, x).unwrap().to_bits())
        .collect();
    assert_eq!(
        served_after, served_before,
        "restored fleet must serve bitwise what the last durable generation served"
    );
    let replay = pipeline2.replay().unwrap();
    assert_eq!(replay.replayed, in_log, "every logged batch re-submitted");
    assert_eq!(replay.orphaned, 0);
    assert_eq!(replay.rejected, 0);
    assert!(!replay.torn);

    // Replayed batches refit, swap, persist — and compact out of the log.
    pipeline2.wait_idle();
    let stats2 = pipeline2.stats();
    assert_eq!(stats2.replayed, replay.replayed);
    assert_eq!(stats2.swapped, stats2.persisted + stats2.persist_failed);
    assert!(
        (store.wal().replay().unwrap().entries.len() as u64) <= in_log,
        "replayed batches must not re-accumulate in the log"
    );
    pipeline2.shutdown();
}

#[test]
fn wal_append_failure_degrades_but_batch_still_refits() {
    // Disk full on the very first mutating op — the first WAL append.
    let fault = FaultFs::new(Arc::new(MemFs::new()));
    fault.arm(0, Fault::NoSpace);
    let store = Arc::new(FleetStore::open(Arc::new(fault.clone())).unwrap());
    let registry = Arc::new(ModelRegistry::new());
    let pipeline = RefitPipeline::with_store(registry.clone(), serial_cfg(), store.clone());
    let id = ModelId::new("gemm", "stampede2", "time");
    pipeline.track(id.clone(), trainer(1));

    pipeline.submit(&id, &telemetry(120, 10)).unwrap();
    pipeline.submit(&id, &telemetry(120, 11)).unwrap();
    pipeline.wait_idle();

    let stats = pipeline.stats();
    assert_eq!(stats.wal_append_failed, 1, "first append hit ENOSPC");
    assert_eq!(stats.wal_appends, 1, "second append went through");
    assert_eq!(stats.submitted, 2, "both batches still admitted");
    assert_eq!(
        stats.swapped + stats.gate_rejected,
        2,
        "durability loss must not cost refits: {stats:?}"
    );
    assert_eq!(stats.swapped, stats.persisted + stats.persist_failed);
    assert!(registry.predict(&id, &[300.0, 300.0]).is_ok());
    pipeline.shutdown();
}

/// The deterministic scenario the kill-point sweep replays: two tracked
/// models, three batches, `wait_idle` between submits so the fs-op
/// sequence (append → refit → persist → compact → gc) is identical run
/// to run up to the armed fault.
fn scenario(pipeline: &RefitPipeline, a: &ModelId, b: &ModelId) {
    pipeline.track(a.clone(), trainer(1));
    pipeline.track(b.clone(), trainer(2));
    for (id, seed) in [(a, 20), (b, 21), (a, 22)] {
        pipeline.submit(id, &telemetry(120, seed)).unwrap();
        pipeline.wait_idle();
    }
}

#[test]
fn kill_point_sweep_recovers_a_complete_durable_fleet() {
    let a = ModelId::new("gemm", "stampede2", "time");
    let b = ModelId::new("spmv", "frontera", "flops");

    // Clean run: measure the scenario's mutating-op count and record the
    // generation it ends on.
    let clean_fs = FaultFs::new(Arc::new(MemFs::new()));
    let clean_store = Arc::new(FleetStore::open(Arc::new(clean_fs.clone())).unwrap());
    let registry = Arc::new(ModelRegistry::new());
    let pipeline = RefitPipeline::with_store(registry.clone(), serial_cfg(), clean_store.clone());
    scenario(&pipeline, &a, &b);
    pipeline.shutdown();
    let n = clean_fs.ops();
    let clean_gen = clean_store.snapshots().generation();
    assert!(n >= 10, "scenario too small for a sweep: {n} ops");
    assert!(clean_gen >= 1, "clean scenario must persist at least once");

    for k in 0..n {
        // The disk dies at op k; the process keeps going.
        let fs = FaultFs::new(Arc::new(MemFs::new()));
        fs.arm(k, Fault::Crash);
        let store = Arc::new(FleetStore::open(Arc::new(fs.clone())).unwrap());
        let registry = Arc::new(ModelRegistry::new());
        let pipeline = RefitPipeline::with_store(registry.clone(), serial_cfg(), store.clone());
        scenario(&pipeline, &a, &b);
        assert_eq!(fs.fired(), 1, "fault at op {k} never fired");

        // Never-stop-serving: a dead disk costs durability, not serving.
        let stats = pipeline.stats();
        assert_eq!(
            stats.swapped + stats.gate_rejected + stats.dropped_jobs + stats.orphaned,
            3,
            "all 3 jobs must terminally resolve despite the dead disk at op {k}: {stats:?}"
        );
        assert_eq!(
            stats.swapped,
            stats.persisted + stats.persist_failed,
            "persist accounting must balance at op {k}: {stats:?}"
        );
        for id in [&a, &b] {
            assert!(
                registry.predict(id, &[300.0, 300.0]).is_ok(),
                "model {id:?} must keep serving after disk death at op {k}"
            );
        }
        pipeline.shutdown();

        // Restart from what actually reached the medium.
        let store2 = Arc::new(FleetStore::open(fs.inner()).unwrap());
        let gen = store2.snapshots().generation();
        assert!(
            gen <= clean_gen,
            "recovered gen {gen} beyond clean {clean_gen} at op {k}"
        );
        let (registry2, pipeline2) = restore_fleet(store2.clone());

        // The restored fleet is exactly the durable snapshot — every
        // model parses, serves, and round-trips to its stored bytes.
        let snap = store2.snapshots().load().unwrap();
        assert_eq!(registry2.len(), snap.models.len());
        for (key, bytes) in &snap.models {
            let id = ModelId::from_store_key(key).unwrap();
            let restored = pipeline2.tracked_model(&id).unwrap();
            assert_eq!(
                &serialize::to_bytes(&restored)[..],
                &bytes[..],
                "restored {id:?} must be bitwise the durable snapshot at op {k}"
            );
            assert!(registry2.predict(&id, &[300.0, 300.0]).is_ok());
        }
        pipeline2.replay().expect("replay must succeed");

        // The recovered pipeline is fully healthy: new telemetry refits
        // and persists a fresh generation on the revived disk.
        if !snap.models.is_empty() {
            let id = ModelId::from_store_key(&snap.models[0].0).unwrap();
            pipeline2.submit(&id, &telemetry(120, 30)).unwrap();
            pipeline2.wait_idle();
            let s2 = pipeline2.stats();
            assert_eq!(s2.swapped, s2.persisted + s2.persist_failed);
            assert_eq!(
                s2.persist_failed, 0,
                "revived disk must persist at op {k}: {s2:?}"
            );
        }
        pipeline2.shutdown();
    }
}

#[test]
fn gate_keeps_rejecting_never_grows_the_wal_unbounded() {
    // The pathology the WAL caps exist for: entries only compact when a
    // gated swap persists, so a gate that keeps rejecting starves
    // compaction while telemetry keeps getting logged. The caps must
    // rotate the oldest records away and hold the log bounded — without
    // costing refit accounting or moving the served plan.
    let limits = WalLimits {
        max_bytes: 16 << 10,
        max_records: 8,
    };
    let store = Arc::new(FleetStore::open_with_wal_limits(Arc::new(MemFs::new()), limits).unwrap());
    let cfg = PipelineConfig {
        // gate_slack <= -1.0 demands a negative holdout error: every
        // candidate loses, no swap ever persists, nothing ever compacts.
        gate_slack: -2.0,
        // Gate rejections count as breaker failures; keep the breaker
        // closed so the test measures WAL starvation, not cooldowns.
        breaker: BreakerConfig {
            failure_threshold: u32::MAX,
            ..BreakerConfig::default()
        },
        ..serial_cfg()
    };
    let registry = Arc::new(ModelRegistry::new());
    let pipeline = RefitPipeline::with_store(registry.clone(), cfg, store.clone());
    let id = ModelId::new("gemm", "stampede2", "time");
    let t = trainer(1);
    let original = t.model().clone();
    pipeline.track(id.clone(), t);

    const BATCHES: u64 = 40;
    for seed in 0..BATCHES {
        pipeline.submit(&id, &telemetry(60, 100 + seed)).unwrap();
        pipeline.wait_idle();
        // Bounded at every point of the starvation, not just at the end.
        let (bytes, records) = store.wal().usage().unwrap();
        assert!(
            records <= limits.max_records,
            "record cap broke after batch {seed}: {records}"
        );
        assert!(
            bytes <= limits.max_bytes,
            "byte cap broke after batch {seed}: {bytes}"
        );
    }

    let stats = pipeline.stats();
    assert_eq!(
        stats.gate_rejected, BATCHES,
        "impossible gate must reject every refit: {stats:?}"
    );
    assert_eq!(stats.swapped, 0);
    assert_eq!(stats.wal_appends, BATCHES, "every batch still logged");
    assert_eq!(stats.compacted, 0, "no persist ever ran");
    assert!(
        store.wal().rotations() > 0,
        "the caps must actually have rotated"
    );
    assert!(store.wal().rotated_records() >= BATCHES - limits.max_records as u64);

    // What survives is a clean, ordered suffix of the newest records.
    let replay = store.wal().replay().unwrap();
    assert!(!replay.torn);
    assert!(
        !replay.entries.is_empty(),
        "the newest record always survives"
    );
    assert!(replay.entries.len() <= limits.max_records);
    let seqs: Vec<u64> = replay.entries.iter().map(|e| e.seq).collect();
    let mut sorted = seqs.clone();
    sorted.sort_unstable();
    assert_eq!(seqs, sorted, "rotation must preserve append order");

    // And the served plan never moved off the original.
    for x in probe_points(16, 9) {
        assert_eq!(
            registry.predict(&id, &x).unwrap().to_bits(),
            original.predict(&x).to_bits(),
            "gate rejections must leave the original plan serving"
        );
    }
    pipeline.shutdown();
}

#[test]
fn restore_under_readers_never_stops_serving() {
    let id = ModelId::new("gemm", "stampede2", "time");
    let old_model = trainer(1).model().clone();
    let new_model = trainer(2).model().clone();

    // A store holding the new generation, built via snapshot_into.
    let store = FleetStore::open(Arc::new(MemFs::new())).unwrap();
    let source = ModelRegistry::new();
    source.insert(id.clone(), new_model.clone());
    source.snapshot_into(&store).unwrap();

    // A live registry serving the old generation under reader pressure.
    let registry = Arc::new(ModelRegistry::new());
    registry.insert(id.clone(), old_model.clone());

    let stop = Arc::new(AtomicBool::new(false));
    let probes = probe_points(16, 99);
    let old_bits: Vec<u64> = probes
        .iter()
        .map(|x| old_model.predict(x).to_bits())
        .collect();
    let new_bits: Vec<u64> = probes
        .iter()
        .map(|x| new_model.predict(x).to_bits())
        .collect();
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let registry = registry.clone();
            let stop = stop.clone();
            let id = id.clone();
            let probes = probes.clone();
            let (old_bits, new_bits) = (old_bits.clone(), new_bits.clone());
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for (i, x) in probes.iter().enumerate() {
                        let y = registry
                            .predict(&id, x)
                            .expect("serving must never pause during restore")
                            .to_bits();
                        assert!(
                            y == old_bits[i] || y == new_bits[i],
                            "served value must be exactly one generation or the other"
                        );
                    }
                }
            })
        })
        .collect();

    // Restore hot-swaps the new generation in under the readers.
    for _ in 0..20 {
        let report = registry.restore(&store).unwrap();
        assert_eq!(report.restored, vec![id.clone()]);
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }
    // Readers drained; the fleet now serves the restored generation.
    for (i, x) in probes.iter().enumerate() {
        assert_eq!(registry.predict(&id, x).unwrap().to_bits(), new_bits[i]);
    }
}
