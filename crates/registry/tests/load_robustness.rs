//! Corrupt/truncated wire bytes must never touch the registry: loads parse
//! fully before any entry is created or replaced, and an existing entry
//! keeps serving its old model bitwise-unchanged through a failed reload.

mod common;

use common::id_of;
use cpr_bench::fixtures::{fleet, random_model};
use cpr_core::serialize;
use cpr_registry::{ModelId, ModelRegistry, RegistryError};

#[test]
fn truncated_bytes_leave_registry_untouched() {
    let models = fleet(3, 17);
    let registry = ModelRegistry::new();
    for f in &models {
        registry.insert(id_of(f), f.model.clone());
    }
    let bytes = serialize::to_bytes(&models[0].model);
    let fresh_id = ModelId::new("new", "machine", "time");

    // Every proper prefix must fail cleanly: no panic, no new entry.
    for cut in 0..bytes.len() {
        let err = registry.load(fresh_id.clone(), &bytes[..cut]);
        assert!(
            matches!(err, Err(RegistryError::Load(_))),
            "prefix of {cut} bytes must be rejected"
        );
        assert_eq!(registry.len(), 3, "failed load must not add entries");
        assert!(!registry.contains(&fresh_id));
    }
    // The full bytes load fine afterwards.
    assert!(!registry.load(fresh_id.clone(), &bytes).unwrap());
    assert_eq!(registry.len(), 4);
}

#[test]
fn corrupt_header_and_payload_rejected() {
    let (model, _, _) = random_model(0, 5, 4, 2, 23);
    let good = serialize::to_bytes(&model);
    let registry = ModelRegistry::new();
    let id = ModelId::new("gemm", "m", "time");

    // Bad magic.
    let mut bad = good.to_vec();
    bad[0] ^= 0xFF;
    assert!(registry.load(id.clone(), &bad).is_err());

    // Unknown version.
    let mut bad = good.to_vec();
    bad[4] = 0x7F;
    assert!(registry.load(id.clone(), &bad).is_err());

    // NaN injected into the factor payload (the trailing 8 bytes belong to
    // a factor entry; the reader rejects non-finite factors).
    let mut bad = good.to_vec();
    let n = bad.len();
    bad[n - 8..].copy_from_slice(&f64::NAN.to_le_bytes());
    assert!(registry.load(id.clone(), &bad).is_err());

    // Empty slice.
    assert!(registry.load(id.clone(), &[]).is_err());

    assert!(registry.is_empty(), "no failed load may leave residue");
    assert_eq!(registry.stats().models, 0);
}

/// A failed reload of an existing id keeps the old entry serving,
/// bitwise-unchanged, including through a plan handle held across the
/// failure.
#[test]
fn failed_reload_keeps_old_entry_serving() {
    let (model_a, _, _) = random_model(2, 6, 4, 2, 5);
    let registry = ModelRegistry::new();
    let id = ModelId::new("spmv", "frontier", "energy");
    registry.insert(id.clone(), model_a.clone());

    let probe = [77.0, 3.0, 0.0];
    let want = model_a.predict(&probe).to_bits();
    let held = registry.plan(&id).unwrap();

    let bytes = serialize::to_bytes(&model_a);
    for cut in [0, 1, 6, bytes.len() / 2, bytes.len() - 1] {
        assert!(registry.load(id.clone(), &bytes[..cut]).is_err());
        assert_eq!(registry.len(), 1);
        assert_eq!(
            registry.predict(&id, &probe).unwrap().to_bits(),
            want,
            "old entry must keep serving through a failed reload"
        );
    }
    assert_eq!(held.predict(&probe).to_bits(), want);

    // Tier ledger is untouched too: the entry still pays its share.
    let stats = registry.stats();
    assert_eq!(stats.dense_bytes, held.dense_cache_bytes());
}

/// The exact atomicity guarantee `ModelRegistry::load` documents, pinned
/// under concurrency: a reload that replaces a live entry is a single
/// pointer move. Handles held across the replacement are immortal
/// snapshots of the old plan (bitwise-stable forever), every concurrent
/// read resolves to exactly the old or the new model (never an error,
/// never a mix), and `contains` never flickers false.
#[test]
fn reload_under_concurrent_readers_is_a_clean_snapshot_swap() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let (model_a, _, _) = random_model(2, 6, 4, 2, 5);
    let (model_b, _, _) = random_model(2, 6, 4, 2, 6);
    let probe = [77.0, 3.0, 0.0];
    let want_a = model_a.predict(&probe).to_bits();
    let want_b = model_b.predict(&probe).to_bits();
    assert_ne!(want_a, want_b, "fixture models must be distinguishable");
    let bytes_a = serialize::to_bytes(&model_a);
    let bytes_b = serialize::to_bytes(&model_b);

    let registry = Arc::new(ModelRegistry::new());
    let id = ModelId::new("gemm", "stampede2", "time");
    registry.insert(id.clone(), model_a.clone());
    let held = registry.plan(&id).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let registry = registry.clone();
            let id = id.clone();
            let held = held.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    assert!(
                        registry.contains(&id),
                        "contains must never flicker false during a reload"
                    );
                    let got = registry
                        .predict(&id, &probe)
                        .expect("reads must never fail during a reload")
                        .to_bits();
                    assert!(
                        got == want_a || got == want_b,
                        "a read must see exactly the old or the new model"
                    );
                    // The held handle is an immortal snapshot of the old
                    // plan; replacements must never mutate it.
                    assert_eq!(held.predict(&probe).to_bits(), want_a);
                }
            })
        })
        .collect();

    for round in 0..200 {
        let bytes = if round % 2 == 0 { &bytes_b } else { &bytes_a };
        let replaced = registry.load(id.clone(), bytes).unwrap();
        assert!(replaced, "every round replaces the live entry");
    }
    stop.store(true, Ordering::Relaxed);
    for h in readers {
        h.join().unwrap();
    }

    // After the last reload (round 199 loaded A) the entry serves A.
    assert_eq!(registry.predict(&id, &probe).unwrap().to_bits(), want_a);
    assert_eq!(held.predict(&probe).to_bits(), want_a);
    assert_eq!(registry.len(), 1, "reloads replace, never duplicate");
}

/// Loading valid v2 bytes through the registry equals loading the model
/// directly — no re-fit, bitwise-equal serving.
#[test]
fn wire_load_is_bitwise_faithful() {
    let models = fleet(10, 71);
    let registry = ModelRegistry::new();
    for f in &models {
        let bytes = serialize::to_bytes(&f.model);
        registry.load(id_of(f), &bytes).unwrap();
    }
    for f in &models {
        let id = id_of(f);
        for probe in [[9.0, -1.0, 0.0], [300.0, 4.0, 2.0], [1500.0, 8.0, 1.0]] {
            assert_eq!(
                registry.predict(&id, &probe).unwrap().to_bits(),
                f.model.predict(&probe).to_bits(),
                "wire-loaded serving drifted for {id}"
            );
        }
    }
}
