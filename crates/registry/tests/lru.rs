//! LRU tiering invariants: the memory-budget rule, eviction order, and
//! bitwise-stable demotion/promotion round-trips.

mod common;

use common::{id_of, load_fleet};
use cpr_bench::fixtures::{fleet, fleet_queries};
use cpr_registry::{ModelId, ModelRegistry};

/// Sum of resident dense bytes as reported per entry must both match the
/// ledger and respect the budget. Note this *serves* (touches) every
/// entry, so call it only where LRU recency no longer matters.
fn assert_ledger_consistent(registry: &ModelRegistry) {
    let stats = registry.stats();
    assert!(
        stats.dense_bytes <= stats.budget,
        "budget exceeded: {} > {}",
        stats.dense_bytes,
        stats.budget
    );
    let per_entry: usize = registry
        .ids()
        .iter()
        .filter(|id| registry.is_dense_resident(id).unwrap())
        .map(|id| registry.plan(id).unwrap().dense_cache_bytes())
        .sum();
    assert_eq!(
        per_entry, stats.dense_bytes,
        "tier ledger drifted from the per-entry truth"
    );
    let resident_count = registry
        .ids()
        .iter()
        .filter(|id| registry.is_dense_resident(id).unwrap())
        .count();
    assert_eq!(resident_count, stats.dense_resident);
    // A resident entry's served plan carries its table; a demoted entry's
    // must not.
    for id in registry.ids() {
        let resident = registry.is_dense_resident(&id).unwrap();
        assert_eq!(registry.plan(&id).unwrap().has_dense_cache(), resident);
    }
}

/// Unbounded registry: every cacheable plan stays resident.
#[test]
fn unbounded_budget_keeps_everything_resident() {
    let models = fleet(16, 7);
    let registry = ModelRegistry::new();
    load_fleet(&registry, &models);
    let stats = registry.stats();
    assert_eq!(stats.models, 16);
    assert_eq!(stats.dense_resident, 16, "small fixture grids all cache");
    assert_ledger_consistent(&registry);
}

/// Zero budget: nothing is ever resident, and serving still works (the
/// factor-gather fallback), bitwise-equal to direct serving.
#[test]
fn zero_budget_serves_through_fallback() {
    let models = fleet(8, 13);
    let registry = ModelRegistry::with_budget(0);
    load_fleet(&registry, &models);
    let stats = registry.stats();
    assert_eq!(stats.dense_resident, 0);
    assert_eq!(stats.dense_bytes, 0);
    for (i, f) in models.iter().enumerate() {
        let id = id_of(f);
        assert!(!registry.promote(&id), "nothing can fit a zero budget");
        for (_, x) in fleet_queries(models.len(), 8, i as u64) {
            assert_eq!(
                registry.predict(&id, &x).unwrap().to_bits(),
                f.model.predict(&x).to_bits()
            );
        }
    }
    let stats = registry.stats();
    assert_eq!(stats.dense_hits, 0, "no dense table exists to hit");
    assert!(stats.gather_hits > 0);
    assert_ledger_consistent(&registry);
}

/// Inserting under a full budget demotes resident entries in
/// least-recently-served order: the victims are exactly a prefix of the
/// recency order, and the hottest entry survives.
#[test]
fn insertion_pressure_evicts_least_recently_used() {
    let models = fleet(7, 31);
    let ids: Vec<ModelId> = models.iter().map(id_of).collect();
    let bytes: Vec<usize> = models
        .iter()
        .map(|f| f.model.plan().dense_cache_bytes())
        .collect();
    // Budget exactly fits the first six tables — the seventh must evict.
    let registry = ModelRegistry::with_budget(bytes[..6].iter().sum());
    for f in &models[..6] {
        registry.insert(id_of(f), f.model.clone());
    }
    assert_eq!(registry.stats().dense_resident, 6);

    // Serve in a known order: index 3 is now the coldest, 4 the hottest.
    let order = [3usize, 1, 5, 0, 2, 4];
    let probe = [100.0, 1.0, 1.0];
    for &i in &order {
        registry.predict(&ids[i], &probe).unwrap();
    }

    registry.insert(id_of(&models[6]), models[6].model.clone());
    let demoted: Vec<usize> = order
        .iter()
        .copied()
        .filter(|&i| registry.is_dense_resident(&ids[i]) == Some(false))
        .collect();
    assert!(!demoted.is_empty(), "the seventh table needed room");
    assert_eq!(
        demoted,
        order[..demoted.len()].to_vec(),
        "victims must be exactly the least-recently-served prefix"
    );
    assert_eq!(
        registry.is_dense_resident(&ids[4]),
        Some(true),
        "the hottest entry must survive LRU pressure"
    );
    assert_eq!(
        registry.is_dense_resident(&ids[6]),
        Some(true),
        "the incoming entry must be admitted"
    );
    assert_ledger_consistent(&registry);
}

/// Demote → promote round-trips: tier flags flip, budget holds, and every
/// prediction before/between/after is bitwise identical.
#[test]
fn demotion_promotion_round_trip_is_bitwise_stable() {
    let models = fleet(6, 47);
    let registry = ModelRegistry::new();
    load_fleet(&registry, &models);
    let queries = fleet_queries(models.len(), 60, 3);
    let ids: Vec<ModelId> = models.iter().map(id_of).collect();

    let serve_all = |registry: &ModelRegistry| -> Vec<u64> {
        queries
            .iter()
            .map(|(who, x)| registry.predict(&ids[*who], x).unwrap().to_bits())
            .collect()
    };
    let baseline = serve_all(&registry);
    for ((who, x), bits) in queries.iter().zip(&baseline) {
        assert_eq!(
            *bits,
            models[*who].model.predict(x).to_bits(),
            "baseline serving must already match the direct plan"
        );
    }

    for _ in 0..3 {
        for id in &ids {
            assert!(registry.demote(id), "resident fixture entries must demote");
            assert_eq!(registry.is_dense_resident(id), Some(false));
        }
        assert_eq!(
            serve_all(&registry),
            baseline,
            "demoted serving moved a bit"
        );
        assert_ledger_consistent(&registry);
        for id in &ids {
            assert!(registry.promote(id), "unbounded budget must re-admit");
            assert_eq!(registry.is_dense_resident(id), Some(true));
        }
        assert_eq!(
            serve_all(&registry),
            baseline,
            "promoted serving moved a bit"
        );
        assert_ledger_consistent(&registry);
    }
}

/// Promotion under a budget that fits exactly one table at a time: each
/// promote succeeds by demoting the previous holder; the ledger never
/// exceeds the budget at any step.
#[test]
fn promotion_rotates_within_budget() {
    let models = fleet(5, 91);
    let ids: Vec<ModelId> = models.iter().map(id_of).collect();
    let biggest = models
        .iter()
        .map(|f| f.model.plan().dense_cache_bytes())
        .max()
        .unwrap();
    let registry = ModelRegistry::with_budget(biggest);
    load_fleet(&registry, &models);
    assert_ledger_consistent(&registry);

    for id in &ids {
        assert!(registry.promote(id), "one table always fits");
        assert_eq!(registry.is_dense_resident(id), Some(true));
        let stats = registry.stats();
        assert!(stats.dense_resident >= 1);
        assert_ledger_consistent(&registry);
    }
    // A budget one byte under the smallest table admits nobody.
    let smallest = models
        .iter()
        .map(|f| f.model.plan().dense_cache_bytes())
        .min()
        .unwrap();
    let tight = ModelRegistry::with_budget(smallest - 1);
    load_fleet(&tight, &models);
    assert_eq!(tight.stats().dense_resident, 0);
    for id in &ids {
        assert!(!tight.promote(id));
    }
    assert_ledger_consistent(&tight);
}

/// Removing entries releases their budget share; re-inserting re-admits.
#[test]
fn remove_releases_budget() {
    let models = fleet(4, 55);
    let ids: Vec<ModelId> = models.iter().map(id_of).collect();
    let bytes: Vec<usize> = models
        .iter()
        .map(|f| f.model.plan().dense_cache_bytes())
        .collect();
    let registry = ModelRegistry::with_budget(bytes.iter().sum());
    load_fleet(&registry, &models);
    assert_eq!(registry.stats().dense_resident, 4);

    assert!(registry.remove(&ids[0]));
    assert!(!registry.remove(&ids[0]), "double remove is a no-op");
    let stats = registry.stats();
    assert_eq!(stats.models, 3);
    assert_eq!(stats.dense_bytes, bytes[1..].iter().sum::<usize>());
    assert_ledger_consistent(&registry);

    registry.insert(ids[0].clone(), models[0].model.clone());
    assert_eq!(registry.stats().dense_resident, 4);
    assert_ledger_consistent(&registry);
}
