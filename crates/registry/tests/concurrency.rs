//! Read-while-swap: the reader-visibility guarantee under live traffic.
//!
//! Every reader must see a *complete* plan — the one registered before its
//! load or the one after, never a torn mixture. The tests pin this by
//! hammering lookups from reader threads while a writer hot-swaps, and
//! checking each observed prediction is bitwise one of the two legitimate
//! answers.

mod common;

use common::{id_of, load_fleet};
use cpr_bench::fixtures::{fleet, fleet_queries, random_model};
use cpr_registry::{ModelId, ModelRegistry};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Two distinct models alternate at one id; concurrent readers must see
/// exactly one of their (bitwise) predictions, never anything else.
#[test]
fn read_while_entry_swap_never_tears() {
    let (model_a, _, _) = random_model(0, 5, 4, 2, 11);
    let (model_b, _, _) = random_model(0, 5, 4, 3, 99);
    let probe = [300.0, 1.5, 2.0];
    let bits_a = model_a.predict(&probe).to_bits();
    let bits_b = model_b.predict(&probe).to_bits();
    assert_ne!(bits_a, bits_b, "fixture models must disagree at the probe");

    let registry = ModelRegistry::new();
    let id = ModelId::new("gemm", "stampede2", "time");
    registry.insert(id.clone(), model_a.clone());

    let stop = AtomicBool::new(false);
    let served = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..3 {
            s.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    let y = registry.predict(&id, &probe).unwrap().to_bits();
                    assert!(
                        y == bits_a || y == bits_b,
                        "reader saw a prediction from neither registered model"
                    );
                    served.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Keep swapping until the readers demonstrably served through the
        // churn (the box may have one CPU: yield so readers get scheduled
        // between swaps). The iteration cap keeps a crashed reader from
        // hanging the writer; the scope join then surfaces its panic.
        let mut i = 0u64;
        while served.load(Ordering::Relaxed) < 2000 && i < 500_000 {
            let m = if i.is_multiple_of(2) {
                &model_b
            } else {
                &model_a
            };
            assert!(registry.insert(id.clone(), m.clone()), "id must exist");
            i += 1;
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
    });
    assert!(
        served.load(Ordering::Relaxed) >= 2000,
        "readers must have run"
    );
}

/// Rebaking a live entry's plan (same model) under concurrent reads and
/// batch serves is invisible: every result stays bitwise-equal to direct
/// serving, whichever plan generation answered.
#[test]
fn rebake_under_load_is_bitwise_invisible() {
    let models = fleet(8, 21);
    let registry = ModelRegistry::new();
    load_fleet(&registry, &models);
    let ids: Vec<ModelId> = models.iter().map(id_of).collect();
    let queries = fleet_queries(models.len(), 400, 5);
    let expected: Vec<u64> = queries
        .iter()
        .map(|(who, x)| models[*who].model.predict(x).to_bits())
        .collect();
    let batch: Vec<(ModelId, Vec<f64>)> = queries
        .iter()
        .map(|(who, x)| (ids[*who].clone(), x.clone()))
        .collect();

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        // Writer: continuous rebake-swaps across the whole fleet.
        s.spawn(|| {
            let mut k = 0usize;
            while !stop.load(Ordering::Relaxed) {
                registry.rebake(&ids[k % ids.len()]);
                k += 1;
            }
        });
        // Readers: single-query and batched serving, checked per query.
        for _ in 0..2 {
            s.spawn(|| {
                for _ in 0..30 {
                    let out = registry.serve_batch(&batch).unwrap();
                    for (y, want) in out.iter().zip(&expected) {
                        assert_eq!(y.to_bits(), *want, "swap changed a served bit");
                    }
                }
            });
        }
        s.spawn(|| {
            for _ in 0..10 {
                for ((who, x), want) in queries.iter().zip(&expected) {
                    let y = registry.predict(&ids[*who], x).unwrap();
                    assert_eq!(y.to_bits(), *want);
                }
            }
        });
        // Let the scoped readers finish, then stop the writer.
        std::thread::sleep(std::time::Duration::from_millis(10));
        stop.store(true, Ordering::Relaxed);
    });
}

/// A plan handle loaded before a removal or replacement keeps serving the
/// old model, bitwise-stable, for as long as the reader holds it.
#[test]
fn held_plan_survives_remove_and_replace() {
    let (model_a, _, _) = random_model(1, 6, 3, 2, 3);
    let (model_b, _, _) = random_model(1, 6, 3, 2, 4);
    let registry = ModelRegistry::new();
    let id = ModelId::new("spmv", "frontier", "time");
    registry.insert(id.clone(), model_a.clone());

    let held = registry.plan(&id).unwrap();
    let probe = [64.0, 0.0, 1.0];
    let want = model_a.predict(&probe).to_bits();

    registry.insert(id.clone(), model_b.clone());
    assert_eq!(
        held.predict(&probe).to_bits(),
        want,
        "replace moved a held plan"
    );
    registry.remove(&id);
    assert_eq!(
        held.predict(&probe).to_bits(),
        want,
        "remove moved a held plan"
    );
    assert!(registry.predict(&id, &probe).is_err(), "entry must be gone");
}
