//! 1-vs-N-thread bitwise determinism through the registry batch front
//! end. Extends the workspace determinism contract (see
//! `cpr_completion`'s suite) to the serving layer: however many rayon
//! workers `PredictPlan::predict_into` fans out over, and however the
//! batch mixes models, `serve_batch` output `i` is bitwise-identical to
//! the single-threaded answer and to direct per-query serving.

mod common;

use common::{id_of, load_fleet};
use cpr_bench::fixtures::{fleet, fleet_queries};
use cpr_registry::{ModelId, ModelRegistry};
use rayon::{ThreadPool, ThreadPoolBuilder};

fn pool(n: usize) -> ThreadPool {
    ThreadPoolBuilder::new().num_threads(n).build().unwrap()
}

fn serve(registry: &ModelRegistry, batch: &[(ModelId, Vec<f64>)], threads: usize) -> Vec<u64> {
    pool(threads)
        .install(|| registry.serve_batch(batch).unwrap())
        .iter()
        .map(|y| y.to_bits())
        .collect()
}

/// The core contract: 1, 2, 4, and 8 worker threads produce the same bits
/// for a mixed 200-model stream, and they match direct plan serving.
#[test]
fn batch_serving_is_thread_count_invariant() {
    let models = fleet(24, 9);
    let registry = ModelRegistry::new();
    load_fleet(&registry, &models);
    let ids: Vec<ModelId> = models.iter().map(id_of).collect();
    let queries = fleet_queries(models.len(), 600, 42);
    let batch: Vec<(ModelId, Vec<f64>)> = queries
        .iter()
        .map(|(who, x)| (ids[*who].clone(), x.clone()))
        .collect();

    let single = serve(&registry, &batch, 1);
    for ((who, x), bits) in queries.iter().zip(&single) {
        assert_eq!(
            *bits,
            models[*who].model.predict(x).to_bits(),
            "single-threaded batch serving must match the direct plan"
        );
    }
    for threads in [2, 4, 8] {
        assert_eq!(
            serve(&registry, &batch, threads),
            single,
            "{threads}-thread serving drifted from single-threaded bits"
        );
    }
}

/// Thread-count invariance must hold in the factor-gather tier too (a
/// zero budget keeps every dense table out), since that is the path a
/// memory-pressured fleet actually serves from.
#[test]
fn thread_count_invariant_without_dense_tier() {
    let models = fleet(12, 33);
    let registry = ModelRegistry::with_budget(0);
    load_fleet(&registry, &models);
    let ids: Vec<ModelId> = models.iter().map(id_of).collect();
    let batch: Vec<(ModelId, Vec<f64>)> = fleet_queries(models.len(), 300, 77)
        .into_iter()
        .map(|(who, x)| (ids[who].clone(), x))
        .collect();

    let single = serve(&registry, &batch, 1);
    assert_eq!(serve(&registry, &batch, 4), single);
    assert_eq!(registry.stats().dense_hits, 0, "zero budget must gather");
}

/// Degenerate batch shapes stay deterministic: an empty batch, a batch of
/// one, and a batch where every query hits the same model.
#[test]
fn degenerate_batches_are_deterministic() {
    let models = fleet(3, 61);
    let registry = ModelRegistry::new();
    load_fleet(&registry, &models);
    let id = id_of(&models[0]);

    let empty: Vec<(ModelId, Vec<f64>)> = Vec::new();
    assert!(serve(&registry, &empty, 4).is_empty());

    let one = vec![(id.clone(), vec![50.0, 2.0, 1.0])];
    assert_eq!(serve(&registry, &one, 4), serve(&registry, &one, 1));

    let same: Vec<(ModelId, Vec<f64>)> = fleet_queries(1, 128, 8)
        .into_iter()
        .map(|(_, x)| (id.clone(), x))
        .collect();
    assert_eq!(serve(&registry, &same, 4), serve(&registry, &same, 1));
}
