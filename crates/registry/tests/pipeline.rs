//! Integration suite for the background refit-and-swap pipeline: the
//! happy path (telemetry in, gated swap out, served output bitwise equal
//! to the committed trainer's model), the quality gate as a one-way door,
//! queue shedding under both policies, ingest quarantine, health
//! reporting, and continuous serving under concurrent churn.

mod common;

use cpr_core::{CprBuilder, Dataset, StreamingCpr};
use cpr_grid::{ParamSpace, ParamSpec};
use cpr_registry::{
    ModelId, ModelRegistry, PipelineConfig, RefitPipeline, RegistryError, ShedPolicy,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn space() -> ParamSpace {
    ParamSpace::new(vec![
        ParamSpec::log("m", 32.0, 2048.0),
        ParamSpec::log("n", 32.0, 2048.0),
    ])
}

/// Power-law telemetry in the fixture family the fleet benches use.
fn telemetry(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Dataset::new();
    for _ in 0..n {
        let m = 32.0 * 64.0_f64.powf(rng.gen::<f64>());
        let nn = 32.0 * 64.0_f64.powf(rng.gen::<f64>());
        data.push(vec![m, nn], 1e-4 * m.powf(1.3) * nn.powf(0.7));
    }
    data
}

fn trainer(seed: u64) -> StreamingCpr {
    let builder = CprBuilder::new(space())
        .cells_per_dim(6)
        .rank(2)
        .regularization(1e-7)
        .seed(seed);
    StreamingCpr::fit(&builder, &telemetry(80, seed)).unwrap()
}

fn probe_points(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            vec![
                32.0 * 64.0_f64.powf(rng.gen::<f64>()),
                32.0 * 64.0_f64.powf(rng.gen::<f64>()),
            ]
        })
        .collect()
}

fn quick_cfg() -> PipelineConfig {
    PipelineConfig {
        workers: 2,
        retry_backoff: Duration::from_millis(1),
        retry_backoff_max: Duration::from_millis(10),
        ..PipelineConfig::default()
    }
}

#[test]
fn refit_swaps_and_serves_the_committed_model_bitwise() {
    let registry = Arc::new(ModelRegistry::new());
    let pipeline = RefitPipeline::new(registry.clone(), quick_cfg());
    let id = ModelId::new("gemm", "stampede2", "time");
    pipeline.track(id.clone(), trainer(1));

    for seed in 10..14 {
        pipeline.submit(&id, &telemetry(120, seed)).unwrap();
    }
    pipeline.wait_idle();

    let stats = pipeline.stats();
    assert_eq!(stats.submitted, 4);
    assert!(
        stats.swapped + stats.gate_rejected == 4,
        "every job must terminally resolve as swap or gate rejection: {stats:?}"
    );
    assert_eq!(stats.queued, 0);
    assert_eq!(stats.in_flight, 0);
    assert_eq!(stats.dropped_jobs, 0);

    // The registry serves exactly the committed trainer's model.
    let committed = pipeline.tracked_model(&id).unwrap();
    for x in probe_points(64, 77) {
        let served = registry.predict(&id, &x).unwrap();
        assert_eq!(
            served.to_bits(),
            committed.predict(&x).to_bits(),
            "served output must be bitwise the committed model's at {x:?}"
        );
    }
    // Registry-level swap accounting saw the installs.
    assert!(registry.stats().swaps >= stats.swapped);
}

#[test]
fn gate_rejection_keeps_the_original_plan_bitwise() {
    let registry = Arc::new(ModelRegistry::new());
    // gate_slack <= -1.0 demands mlogq <= negative, which no candidate
    // can satisfy: every refit is rejected.
    let cfg = PipelineConfig {
        gate_slack: -2.0,
        ..quick_cfg()
    };
    let pipeline = RefitPipeline::new(registry.clone(), cfg);
    let id = ModelId::new("spmv", "frontier", "time");
    let t = trainer(2);
    let original = t.model().clone();
    pipeline.track(id.clone(), t);

    for seed in 20..23 {
        pipeline.submit(&id, &telemetry(100, seed)).unwrap();
    }
    pipeline.wait_idle();

    let stats = pipeline.stats();
    assert_eq!(stats.swapped, 0, "impossible gate must reject everything");
    assert_eq!(stats.gate_rejected, 3);
    for x in probe_points(32, 5) {
        assert_eq!(
            registry.predict(&id, &x).unwrap().to_bits(),
            original.predict(&x).to_bits(),
            "rejected refits must leave the original plan serving"
        );
    }

    let health = pipeline.health(&id).unwrap();
    assert_eq!(health.swaps, 0);
    assert_eq!(health.gate_rejections, 3);
    assert!(
        health.holdout_reserved > 0,
        "jobs were picked up, so the holdout slice must be populated"
    );
    assert!(health.last_swap_age.is_none(), "no swap ever happened");

    // Rejection keeps the data: the committed trainer absorbed the
    // batches (statistics advance) without moving the factors.
    let committed = pipeline.tracked_model(&id).unwrap();
    for x in probe_points(8, 6) {
        assert_eq!(
            committed.predict(&x).to_bits(),
            original.predict(&x).to_bits()
        );
    }
}

#[test]
fn reject_newest_backpressures_when_the_queue_is_full() {
    let registry = Arc::new(ModelRegistry::new());
    // No workers: nothing drains, so the queue fills deterministically.
    let cfg = PipelineConfig {
        workers: 0,
        queue_capacity: 2,
        shed: ShedPolicy::RejectNewest,
        ..PipelineConfig::default()
    };
    let pipeline = RefitPipeline::new(registry, cfg);
    let id = ModelId::new("fft", "fugaku", "time");
    pipeline.track(id.clone(), trainer(3));

    assert!(pipeline.submit(&id, &telemetry(10, 1)).is_ok());
    assert!(pipeline.submit(&id, &telemetry(10, 2)).is_ok());
    let refused = pipeline.submit(&id, &telemetry(10, 3));
    assert!(
        matches!(refused, Err(RegistryError::QueueFull(ref rid)) if rid == &id),
        "third submit must be refused: {refused:?}"
    );
    let stats = pipeline.stats();
    assert_eq!(stats.queued, 2, "refused batch must not be queued");
    assert_eq!(stats.shed, 1);
}

#[test]
fn drop_oldest_sheds_queued_work_and_admits_the_newcomer() {
    let registry = Arc::new(ModelRegistry::new());
    let cfg = PipelineConfig {
        workers: 0,
        queue_capacity: 2,
        shed: ShedPolicy::DropOldest,
        ..PipelineConfig::default()
    };
    let pipeline = RefitPipeline::new(registry, cfg);
    let id = ModelId::new("stencil", "stampede2", "energy");
    pipeline.track(id.clone(), trainer(4));

    assert_eq!(pipeline.submit(&id, &telemetry(10, 1)).unwrap().shed, 0);
    assert_eq!(pipeline.submit(&id, &telemetry(10, 2)).unwrap().shed, 0);
    // Full queue: the oldest is evicted, the newcomer is admitted.
    let receipt = pipeline.submit(&id, &telemetry(10, 3)).unwrap();
    assert_eq!(receipt.shed, 1);
    let stats = pipeline.stats();
    assert_eq!(stats.queued, 2, "capacity is respected after the shed");
    assert_eq!(stats.shed, 1);
}

#[test]
fn quarantine_filters_bad_samples_and_counts_them() {
    let registry = Arc::new(ModelRegistry::new());
    let cfg = PipelineConfig {
        workers: 0,
        ..PipelineConfig::default()
    };
    let pipeline = RefitPipeline::new(registry, cfg);
    let id = ModelId::new("sort", "frontier", "time");
    pipeline.track(id.clone(), trainer(5));

    // Quarantine triggers: non-positive measurement, wrong dimension.
    // (Non-finite values cannot enter a Dataset at all — ingest
    // validation — so the pipeline's quarantine covers what remains.)
    let mut batch = Dataset::new();
    batch.push(vec![100.0, 100.0], 3.0); // good
    batch.push(vec![50.0, 80.0], 0.0); // non-positive measurement
    batch.push(vec![40.0], 2.0); // wrong dimension
    batch.push(vec![64.0, 64.0], 1.5); // good
    let receipt = pipeline.submit(&id, &batch).unwrap();
    assert_eq!(receipt.accepted, 2);
    assert_eq!(receipt.quarantined, 2);
    assert_eq!(pipeline.stats().quarantined, 2);

    // A batch that quarantines to nothing queues nothing.
    let mut all_bad = Dataset::new();
    all_bad.push(vec![10.0, 10.0], -1.0);
    let receipt = pipeline.submit(&id, &all_bad).unwrap();
    assert_eq!(receipt.accepted, 0);
    assert_eq!(receipt.quarantined, 1);
    assert_eq!(pipeline.stats().queued, 1, "only the first batch queued");
}

#[test]
fn untracked_submissions_are_refused() {
    let registry = Arc::new(ModelRegistry::new());
    let pipeline = RefitPipeline::new(registry, quick_cfg());
    let id = ModelId::new("qbox", "fugaku", "energy");
    let err = pipeline.submit(&id, &telemetry(10, 1)).unwrap_err();
    assert!(matches!(err, RegistryError::Untracked(ref rid) if rid == &id));
    assert!(pipeline.tracked_model(&id).is_none());
    assert!(pipeline.health(&id).is_none());
    assert!(!pipeline.untrack(&id));
}

#[test]
fn untrack_leaves_the_registry_serving_the_last_good_plan() {
    let registry = Arc::new(ModelRegistry::new());
    let pipeline = RefitPipeline::new(registry.clone(), quick_cfg());
    let id = ModelId::new("scan", "stampede2", "time");
    pipeline.track(id.clone(), trainer(6));
    pipeline.submit(&id, &telemetry(100, 30)).unwrap();
    pipeline.wait_idle();
    let committed = pipeline.tracked_model(&id).unwrap();

    assert!(pipeline.untrack(&id));
    assert!(pipeline.submit(&id, &telemetry(10, 31)).is_err());
    // Graceful degradation: the entry still serves.
    for x in probe_points(16, 8) {
        assert_eq!(
            registry.predict(&id, &x).unwrap().to_bits(),
            committed.predict(&x).to_bits()
        );
    }
}

#[test]
fn health_reports_swaps_and_staleness() {
    let registry = Arc::new(ModelRegistry::new());
    let pipeline = RefitPipeline::new(registry.clone(), quick_cfg());
    let id = ModelId::new("kripke", "frontier", "time");
    pipeline.track(id.clone(), trainer(7));

    let fresh = pipeline.health(&id).unwrap();
    assert_eq!(fresh.swaps, 0);
    assert_eq!(fresh.queued, 0);
    assert!(fresh.last_swap_age.is_none());

    pipeline.submit(&id, &telemetry(150, 40)).unwrap();
    pipeline.wait_idle();
    let after = pipeline.health(&id).unwrap();
    assert_eq!(after.swaps + after.gate_rejections, 1);
    if after.swaps == 1 {
        assert!(after.last_swap_age.is_some());
    }
    // Registry-level staleness: something is installed, so the fleet has
    // an oldest model age.
    assert!(registry.stats().oldest_model_age.is_some());
}

/// The serving contract under churn: reader threads hammer the registry
/// while refits swap plans underneath them; every read must succeed with
/// a finite value, and the final state must be bitwise the committed
/// trainer's model.
#[test]
fn serving_is_continuous_under_concurrent_refit_churn() {
    let registry = Arc::new(ModelRegistry::new());
    let cfg = PipelineConfig {
        queue_capacity: 64,
        ..quick_cfg()
    };
    let pipeline = RefitPipeline::new(registry.clone(), cfg);
    let ids: Vec<ModelId> = (0..4)
        .map(|i| ModelId::new(format!("app{i}"), "m", "time"))
        .collect();
    for (i, id) in ids.iter().enumerate() {
        pipeline.track(id.clone(), trainer(100 + i as u64));
    }

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|r| {
            let registry = registry.clone();
            let ids = ids.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let points = probe_points(32, 200 + r);
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for (k, x) in points.iter().enumerate() {
                        let id = &ids[(r as usize + k) % ids.len()];
                        let y = registry
                            .predict(id, x)
                            .expect("serving must never be interrupted");
                        assert!(y.is_finite(), "served value must be finite");
                        reads += 1;
                    }
                }
                reads
            })
        })
        .collect();

    for round in 0..6 {
        for (i, id) in ids.iter().enumerate() {
            let _ = pipeline.submit(id, &telemetry(80, 300 + round * 10 + i as u64));
        }
    }
    pipeline.wait_idle();
    stop.store(true, Ordering::Relaxed);
    let total_reads: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total_reads > 0);

    let stats = pipeline.stats();
    assert_eq!(stats.queued, 0);
    assert_eq!(stats.in_flight, 0);
    assert_eq!(
        stats.swapped + stats.gate_rejected + stats.shed + stats.dropped_jobs,
        stats.submitted,
        "every submission must terminally resolve: {stats:?}"
    );
    for id in &ids {
        let committed = pipeline.tracked_model(id).unwrap();
        for x in probe_points(16, 9) {
            assert_eq!(
                registry.predict(id, &x).unwrap().to_bits(),
                committed.predict(&x).to_bits(),
                "after churn the registry serves the committed model for {id}"
            );
        }
    }
}

/// Dropping the pipeline mid-flight must not wedge or poison the
/// registry: whatever was last installed keeps serving.
#[test]
fn drop_mid_flight_leaves_the_registry_serving() {
    let registry = Arc::new(ModelRegistry::new());
    let id = ModelId::new("gemm", "fugaku", "energy");
    {
        let pipeline = RefitPipeline::new(registry.clone(), quick_cfg());
        pipeline.track(id.clone(), trainer(8));
        for seed in 50..58 {
            let _ = pipeline.submit(&id, &telemetry(60, seed));
        }
        // Dropped with work possibly queued/in flight.
    }
    for x in probe_points(16, 10) {
        assert!(registry.predict(&id, &x).unwrap().is_finite());
    }
}
