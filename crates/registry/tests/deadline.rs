//! Deadline-aware serving entry points: bitwise equality with the
//! unbounded paths, shed-before-work on expired budgets, clean rejection
//! of malformed queries, and the shed-accounting identity under
//! concurrent load (PR 7 churn-accounting style): every deadline-aware
//! call lands in exactly one of {served, deadline_shed, malformed,
//! miss}, and the registry counters reconcile exactly once the load
//! drains.

mod common;

use common::{id_of, load_fleet};
use cpr_bench::fixtures::{fleet, fleet_queries};
use cpr_registry::{ModelId, ModelRegistry, RegistryError, DEADLINE_CHECK_CHUNK};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn generous() -> Instant {
    Instant::now() + Duration::from_secs(3600)
}

#[test]
fn deadline_serving_matches_unbounded_bitwise() {
    let models = fleet(16, 11);
    let registry = ModelRegistry::new();
    load_fleet(&registry, &models);
    let ids: Vec<ModelId> = models.iter().map(id_of).collect();
    // Big enough to exercise several deadline-check chunks per group.
    let queries = fleet_queries(models.len(), 3 * DEADLINE_CHECK_CHUNK, 5);
    let batch: Vec<(ModelId, Vec<f64>)> = queries
        .iter()
        .map(|(who, x)| (ids[*who].clone(), x.clone()))
        .collect();

    let unbounded = registry.serve_batch(&batch).unwrap();
    let bounded = registry.serve_batch_deadline(&batch, generous()).unwrap();
    assert_eq!(unbounded.len(), bounded.len());
    for (a, b) in unbounded.iter().zip(&bounded) {
        assert_eq!(a.to_bits(), b.to_bits(), "chunked deadline path drifted");
    }
    for (id, x) in batch.iter().take(64) {
        let direct = registry.predict(id, x).unwrap();
        let dl = registry.predict_deadline(id, x, generous()).unwrap();
        assert_eq!(direct.to_bits(), dl.to_bits());
    }
}

#[test]
fn expired_deadline_sheds_before_any_work() {
    let models = fleet(4, 3);
    let registry = ModelRegistry::new();
    load_fleet(&registry, &models);
    let id = id_of(&models[0]);
    let x = fleet_queries(models.len(), 1, 1)[0].1.clone();

    let before = registry.stats();
    let past = Instant::now();
    assert_eq!(
        registry.predict_deadline(&id, &x, past),
        Err(RegistryError::DeadlineExceeded)
    );
    let batch = vec![(id.clone(), x.clone()); 8];
    assert_eq!(
        registry.serve_batch_deadline(&batch, past),
        Err(RegistryError::DeadlineExceeded)
    );
    let after = registry.stats();
    assert_eq!(after.deadline_shed, before.deadline_shed + 2);
    // Shed means shed: no query was served on either path.
    assert_eq!(after.dense_hits, before.dense_hits);
    assert_eq!(after.gather_hits, before.gather_hits);
}

#[test]
fn malformed_queries_reject_cleanly_with_no_work() {
    let models = fleet(4, 7);
    let registry = ModelRegistry::new();
    load_fleet(&registry, &models);
    let id = id_of(&models[0]);
    let good = fleet_queries(models.len(), 4, 2)[0].1.clone();

    let before = registry.stats();
    // Wrong dimension.
    let mut too_long = good.clone();
    too_long.push(1.0);
    assert!(matches!(
        registry.predict_deadline(&id, &too_long, generous()),
        Err(RegistryError::MalformedQuery(_))
    ));
    // Non-finite coordinates.
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let mut q = good.clone();
        q[0] = bad;
        assert!(matches!(
            registry.predict_deadline(&id, &q, generous()),
            Err(RegistryError::MalformedQuery(_))
        ));
    }
    // One bad query anywhere fails the whole batch before any compute.
    let mut nan_query = good.clone();
    nan_query[0] = f64::NAN;
    let mut batch = vec![(id.clone(), good.clone()); 6];
    batch.push((id.clone(), nan_query));
    assert!(matches!(
        registry.serve_batch_deadline(&batch, generous()),
        Err(RegistryError::MalformedQuery(_))
    ));
    let after = registry.stats();
    assert_eq!(after.malformed, before.malformed + 5);
    assert_eq!(after.dense_hits, before.dense_hits);
    assert_eq!(after.gather_hits, before.gather_hits);
    assert_eq!(after.deadline_shed, before.deadline_shed);
}

#[test]
fn unknown_model_is_a_miss_not_a_shed() {
    let registry = ModelRegistry::new();
    let ghost = ModelId::new("ghost", "nowhere", "time");
    assert!(matches!(
        registry.predict_deadline(&ghost, &[1.0], generous()),
        Err(RegistryError::UnknownModel(_))
    ));
    let stats = registry.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.deadline_shed, 0);
    assert_eq!(stats.malformed, 0);
}

/// Shed-accounting identity under concurrent load: four thread roles
/// hammer the deadline path (served / expired-deadline / malformed /
/// unknown-model) while a sampler takes stats snapshots. Every snapshot
/// must satisfy `served + deadline_shed + malformed + misses <= issued`
/// with monotone counters, and the drained end state reconciles exactly:
/// each call bumped exactly one bucket.
#[test]
fn concurrent_shed_accounting_reconciles_exactly() {
    const THREADS_PER_ROLE: usize = 2;
    const CALLS: u64 = 400;

    let models = fleet(8, 21);
    let registry = Arc::new(ModelRegistry::new());
    load_fleet(&registry, &models);
    let id = id_of(&models[0]);
    let good = fleet_queries(models.len(), 1, 9)[0].1.clone();
    let ghost = ModelId::new("ghost", "nowhere", "time");
    let mut nan_query = good.clone();
    nan_query[0] = f64::NAN;

    let issued = Arc::new(AtomicU64::new(0));
    let start = Arc::new(Barrier::new(4 * THREADS_PER_ROLE + 1));
    let mut handles = Vec::new();
    for role in 0..4 {
        for _ in 0..THREADS_PER_ROLE {
            let registry = Arc::clone(&registry);
            let issued = Arc::clone(&issued);
            let start = Arc::clone(&start);
            let id = id.clone();
            let ghost = ghost.clone();
            let good = good.clone();
            let nan_query = nan_query.clone();
            handles.push(std::thread::spawn(move || {
                start.wait();
                for _ in 0..CALLS {
                    // Count the call *before* it lands so a sampler can
                    // never see a bucket ahead of the issue counter.
                    issued.fetch_add(1, Ordering::SeqCst);
                    let r = match role {
                        0 => registry.predict_deadline(&id, &good, generous()),
                        1 => registry.predict_deadline(&id, &good, Instant::now()),
                        2 => registry.predict_deadline(&id, &nan_query, generous()),
                        _ => registry.predict_deadline(&ghost, &good, generous()),
                    };
                    match (role, r) {
                        (0, Ok(_)) => {}
                        (1, Err(RegistryError::DeadlineExceeded)) => {}
                        (2, Err(RegistryError::MalformedQuery(_))) => {}
                        (3, Err(RegistryError::UnknownModel(_))) => {}
                        (role, r) => panic!("role {role} got unexpected result {r:?}"),
                    }
                }
            }));
        }
    }
    let sampler = {
        let registry = Arc::clone(&registry);
        let issued = Arc::clone(&issued);
        let start = Arc::clone(&start);
        std::thread::spawn(move || {
            start.wait();
            let total = 4 * THREADS_PER_ROLE as u64 * CALLS;
            let mut last_sum = 0u64;
            while issued.load(Ordering::SeqCst) < total {
                let s = registry.stats();
                let sum = s.dense_hits + s.gather_hits + s.deadline_shed + s.malformed + s.misses;
                assert!(sum >= last_sum, "shed accounting went backwards");
                assert!(
                    sum <= issued.load(Ordering::SeqCst),
                    "buckets ran ahead of issued calls: {sum}"
                );
                last_sum = sum;
                std::thread::yield_now();
            }
        })
    };
    for h in handles {
        h.join().unwrap();
    }
    sampler.join().unwrap();

    let per_role = THREADS_PER_ROLE as u64 * CALLS;
    let s = registry.stats();
    assert_eq!(s.dense_hits + s.gather_hits, per_role, "served bucket");
    assert_eq!(s.deadline_shed, per_role, "deadline bucket");
    assert_eq!(s.malformed, per_role, "malformed bucket");
    assert_eq!(s.misses, per_role, "miss bucket");
}
