//! The serving contract, pinned by proptests: registry-served predictions
//! are **bitwise equal** to serving the same query through the model's own
//! `PredictPlan` directly — whatever the LRU tier state (any budget, any
//! demote/promote history) and whatever hot-swaps run concurrently.
//!
//! Why this can hold at all: the dense corner-value path and the
//! factor-gather fallback are each bitwise-pinned to the naive reference
//! (`cpr_core`'s plan-equivalence suite), so dropping or rebaking a dense
//! table can never move a bit; a hot-swap installs a rebake of the same
//! model. These tests close the loop at the registry layer, where the tier
//! machinery actually flips between those paths under load.

mod common;

use common::{id_of, load_fleet};
use cpr_bench::fixtures::{fleet, fleet_queries};
use cpr_registry::{ModelId, ModelRegistry};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Single-threaded core contract: any budget, any interleaving of
    /// demote/promote/rebake, single and batched serving — all bitwise
    /// equal to direct plan serving, with the budget never exceeded.
    #[test]
    fn registry_matches_direct_serving_under_any_tier_state(
        fleet_seed in 0u64..500,
        n_models in 3usize..10,
        budget_kib in 0usize..12,
        ops in proptest::collection::vec((0u8..4, 0usize..10), 0..24),
        query_seed in 0u64..500,
    ) {
        let models = fleet(n_models, fleet_seed);
        let registry = ModelRegistry::with_budget(budget_kib * 1024);
        load_fleet(&registry, &models);
        let ids: Vec<ModelId> = models.iter().map(id_of).collect();

        // Random tier churn; budget invariant checked after every op.
        for (op, who) in ops {
            let id = &ids[who % ids.len()];
            match op {
                0 => { registry.demote(id); }
                1 => { registry.promote(id); }
                2 => { registry.rebake(id); }
                _ => { registry.insert(id.clone(), models[who % ids.len()].model.clone()); }
            }
            let stats = registry.stats();
            prop_assert!(
                stats.dense_bytes <= stats.budget,
                "budget exceeded: {} > {}", stats.dense_bytes, stats.budget
            );
        }

        // Serve a mixed stream both ways and compare against the models.
        let queries = fleet_queries(models.len(), 64, query_seed);
        let batch: Vec<(ModelId, Vec<f64>)> = queries
            .iter()
            .map(|(who, x)| (ids[*who].clone(), x.clone()))
            .collect();
        let batched = registry.serve_batch(&batch).unwrap();
        for ((who, x), served) in queries.iter().zip(&batched) {
            let want = models[*who].model.predict(x).to_bits();
            prop_assert_eq!(
                registry.predict(&ids[*who], x).unwrap().to_bits(), want,
                "single-query serving drifted from the direct plan"
            );
            prop_assert_eq!(
                served.to_bits(), want,
                "batched serving drifted from the direct plan"
            );
        }
    }

    /// Multi-threaded contract: reader threads compare every served bit
    /// against direct plan serving while another thread churns the tier
    /// state (demotions, promotions, rebake hot-swaps) the whole time.
    #[test]
    fn registry_matches_direct_serving_under_concurrent_churn(
        fleet_seed in 0u64..200,
        budget_kib in 0usize..8,
        query_seed in 0u64..200,
    ) {
        let models = fleet(6, fleet_seed);
        let registry = ModelRegistry::with_budget(budget_kib * 1024);
        load_fleet(&registry, &models);
        let ids: Vec<ModelId> = models.iter().map(id_of).collect();
        let queries = fleet_queries(models.len(), 128, query_seed);
        let expected: Vec<u64> = queries
            .iter()
            .map(|(who, x)| models[*who].model.predict(x).to_bits())
            .collect();
        let batch: Vec<(ModelId, Vec<f64>)> = queries
            .iter()
            .map(|(who, x)| (ids[*who].clone(), x.clone()))
            .collect();

        let stop = AtomicBool::new(false);
        let failed = AtomicBool::new(false);
        // Readers check both serving surfaces, every bit. Defined outside
        // the scope so spawned threads can borrow it for the whole scope.
        let reader = |use_batch: bool| {
            for _ in 0..6 {
                if use_batch {
                    let out = registry.serve_batch(&batch).unwrap();
                    for (y, want) in out.iter().zip(&expected) {
                        if y.to_bits() != *want {
                            failed.store(true, Ordering::Relaxed);
                        }
                    }
                } else {
                    for ((who, x), want) in queries.iter().zip(&expected) {
                        let y = registry.predict(&ids[*who], x).unwrap();
                        if y.to_bits() != *want {
                            failed.store(true, Ordering::Relaxed);
                        }
                    }
                }
            }
        };
        std::thread::scope(|s| {
            // Churner: every tier transition the registry offers.
            s.spawn(|| {
                let mut k = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let id = &ids[k % ids.len()];
                    match k % 3 {
                        0 => { registry.demote(id); }
                        1 => { registry.promote(id); }
                        _ => { registry.rebake(id); }
                    }
                    k += 1;
                    std::thread::yield_now();
                }
            });
            let a = s.spawn(|| reader(true));
            let b = s.spawn(|| reader(false));
            a.join().unwrap();
            b.join().unwrap();
            stop.store(true, Ordering::Relaxed);
        });
        prop_assert!(!failed.load(Ordering::Relaxed),
            "a served bit drifted from direct plan serving under churn");
        let stats = registry.stats();
        prop_assert!(stats.dense_bytes <= stats.budget);
    }
}
