//! Shared plumbing for the registry integration suite: fleet fixtures
//! (from `cpr_bench::fixtures`, the same population the bench stages
//! serve) adapted to registry ids.
//!
//! Each integration test binary compiles its own copy, so not every
//! helper is used from every binary.
#![allow(dead_code)]

use cpr_bench::fixtures::FleetModel;
use cpr_registry::{ModelId, ModelRegistry};

/// The registry key of one fleet fixture entry.
pub fn id_of(f: &FleetModel) -> ModelId {
    ModelId::new(f.app.clone(), f.machine.clone(), f.metric.clone())
}

/// Register every fleet model under its naming triple.
pub fn load_fleet(registry: &ModelRegistry, fleet: &[FleetModel]) {
    for f in fleet {
        registry.insert(id_of(f), f.model.clone());
    }
}
