//! Observability wiring at the registry layer: instrumentation must be
//! a pure *view* — bitwise-identical serving with timing on or off, and
//! exported `cpr_registry_*` counters that are the same cells
//! [`RegistryStats`](cpr_registry::RegistryStats) reads.

mod common;

use common::{id_of, load_fleet};
use cpr_bench::fixtures::{fleet, fleet_queries};
use cpr_obs::MetricsRegistry;
use cpr_registry::{ModelId, ModelRegistry, LATENCY_SAMPLE};
use std::sync::Arc;

#[test]
fn instrumented_serving_is_bitwise_identical_to_uninstrumented() {
    let models = fleet(10, 91);
    let queries = fleet_queries(models.len(), 200, 17);

    let plain = ModelRegistry::new();
    let hub = Arc::new(MetricsRegistry::new());
    let timed = ModelRegistry::with_obs(usize::MAX, Arc::clone(&hub));
    timed.enable_timing();
    load_fleet(&plain, &models);
    load_fleet(&timed, &models);

    for (who, x) in &queries {
        let id = id_of(&models[*who]);
        let a = plain.predict(&id, x).unwrap();
        let b = timed.predict(&id, x).unwrap();
        assert_eq!(a.to_bits(), b.to_bits(), "instrumentation changed {x:?}");
    }
    // The timed registry actually measured: deterministic round-robin
    // sampling records exactly one serve latency per LATENCY_SAMPLE
    // queries (ticks 0, N, 2N, ...).
    let serve = hub
        .histogram_snapshot("cpr_registry_serve_us")
        .expect("serve histogram registered");
    assert_eq!(
        serve.count(),
        (queries.len() as u64).div_ceil(LATENCY_SAMPLE)
    );
}

#[test]
fn exported_counters_are_the_stats_cells() {
    let hub = Arc::new(MetricsRegistry::new());
    let registry = ModelRegistry::with_obs(usize::MAX, Arc::clone(&hub));
    let models = fleet(6, 52);
    load_fleet(&registry, &models);

    let queries = fleet_queries(models.len(), 120, 31);
    for (who, x) in &queries {
        registry.predict(&id_of(&models[*who]), x).unwrap();
    }
    // A miss, a malformed (non-finite) query, and a swap-by-replacement.
    let _ = registry.predict(&ModelId::new("no", "such", "model"), &[1.0]);
    let mut poisoned = queries[0].1.clone();
    poisoned[0] = f64::NAN;
    let far = std::time::Instant::now() + std::time::Duration::from_secs(60);
    let _ = registry.predict_deadline(&id_of(&models[queries[0].0]), &poisoned, far);
    registry.insert(id_of(&models[0]), models[1].model.clone());

    let s = registry.stats();
    let get = |name: &str| hub.counter_value(name).expect(name);
    assert_eq!(get("cpr_registry_dense_hits_total"), s.dense_hits);
    assert_eq!(get("cpr_registry_gather_hits_total"), s.gather_hits);
    assert_eq!(get("cpr_registry_misses_total"), s.misses);
    assert_eq!(get("cpr_registry_deadline_shed_total"), s.deadline_shed);
    assert_eq!(get("cpr_registry_malformed_total"), s.malformed);
    assert_eq!(get("cpr_registry_swaps_total"), s.swaps);
    assert!(s.misses >= 1 && s.malformed >= 1 && s.swaps >= 1);

    // The swap left a trace event carrying the model id.
    let events = hub.events().since(0);
    assert!(
        events
            .iter()
            .any(|e| e.kind == cpr_obs::EventKind::Swap && e.detail.contains(&models[0].app)),
        "{events:?}"
    );
}
