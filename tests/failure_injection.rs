//! Failure-injection integration tests: degenerate datasets, hostile
//! configurations, and boundary abuse across the public API.

use cpr::apps::{Benchmark, MatMul};
use cpr::core::{CprBuilder, CprError, Dataset};
use cpr::grid::{ParamSpace, ParamSpec};

fn space2() -> ParamSpace {
    ParamSpace::new(vec![
        ParamSpec::log("a", 1.0, 1000.0),
        ParamSpec::log("b", 1.0, 1000.0),
    ])
}

#[test]
fn single_observation_trains_and_predicts() {
    let mut data = Dataset::new();
    data.push(vec![30.0, 30.0], 0.5);
    let model = CprBuilder::new(space2())
        .cells_per_dim(4)
        .rank(2)
        .fit(&data)
        .unwrap();
    let p = model.predict(&[30.0, 30.0]);
    assert!(p.is_finite() && p > 0.0);
    // One cell observed; the prediction near it should be within an order of
    // magnitude of the sole observation.
    assert!((p / 0.5).ln().abs() < 2.5, "prediction {p}");
}

#[test]
fn constant_observations_give_constant_model() {
    let mut data = Dataset::new();
    for i in 0..200 {
        let a = 1.0 + (i % 20) as f64 * 40.0;
        let b = 1.0 + (i / 20) as f64 * 90.0;
        data.push(vec![a, b], 3.25);
    }
    let model = CprBuilder::new(space2())
        .cells_per_dim(5)
        .rank(3)
        .fit(&data)
        .unwrap();
    for probe in [[2.0, 2.0], [500.0, 500.0], [999.0, 3.0]] {
        let p = model.predict(&probe);
        assert!(
            (p / 3.25).ln().abs() < 0.05,
            "constant data should predict 3.25, got {p}"
        );
    }
}

#[test]
fn clustered_observations_leave_most_cells_empty() {
    // All samples land in one corner; completion must still return finite
    // predictions everywhere (ridge keeps unobserved rows bounded).
    let mut data = Dataset::new();
    for i in 0..300 {
        let a = 1.0 + (i % 17) as f64 * 0.1;
        let b = 1.0 + (i % 13) as f64 * 0.1;
        data.push(vec![a, b], 1e-3 * (1.0 + a * b));
    }
    let model = CprBuilder::new(space2())
        .cells_per_dim(8)
        .rank(4)
        .fit(&data)
        .unwrap();
    assert!(model.density() < 0.1, "sanity: data should be clustered");
    for probe in [[999.0, 999.0], [1.0, 999.0], [31.0, 31.0]] {
        let p = model.predict(&probe);
        assert!(p.is_finite() && p > 0.0, "non-finite at {probe:?}: {p}");
    }
}

#[test]
fn extreme_time_scales_survive() {
    // Nanoseconds to days in one dataset. The grid is fine enough that each
    // cell holds a narrow slice of the 12-decade range: coarse cells would
    // instead expose the arithmetic-mean binning skew of §5.1 (cell means of
    // a convex function sit above its mid-point value).
    let mut data = Dataset::new();
    for i in 0..400 {
        let a = 1.0 + (i % 20) as f64 * 50.0;
        let b = 1.0 + (i / 20) as f64 * 50.0;
        data.push(vec![a, b], 1e-9 * (a * b).powf(2.5));
    }
    let model = CprBuilder::new(space2())
        .cells_per_dim(16)
        .rank(2)
        .fit(&data)
        .unwrap();
    let m = model.evaluate(&data);
    assert!(m.mlogq < 0.3, "wide-scale fit MLogQ {}", m.mlogq);
    let span = data.ys().iter().fold(f64::INFINITY, |a, &b| a.min(b));
    assert!(span < 1e-8, "sanity: dataset should reach nanoseconds");
}

#[test]
fn rejects_nan_and_infinite_times_at_ingest() {
    // Non-finite measurements never reach a fit: `try_push` refuses them
    // at the dataset boundary (and `push` panics), so the builder can
    // only ever see finite observations.
    let mut data = Dataset::new();
    assert!(matches!(
        data.try_push(vec![10.0, 10.0], f64::NAN),
        Err(CprError::NonFiniteObservation {
            coordinate: None,
            ..
        })
    ));
    assert!(matches!(
        data.try_push(vec![10.0, 10.0], f64::INFINITY),
        Err(CprError::NonFiniteObservation {
            coordinate: None,
            ..
        })
    ));
    assert!(matches!(
        data.try_push(vec![f64::NAN, 10.0], 1.0),
        Err(CprError::NonFiniteObservation {
            coordinate: Some(0),
            ..
        })
    ));
    assert!(data.is_empty(), "rejected observations leave no residue");
    // Non-positive-but-finite times still ingest (quarantining them is a
    // training-time concern) and are rejected by the log-loss fit.
    data.push(vec![10.0, 10.0], 0.0);
    assert!(matches!(
        CprBuilder::new(space2()).fit(&data),
        Err(CprError::NonPositiveTime { .. })
    ));
}

#[test]
fn out_of_range_configurations_clamp_not_panic() {
    let app = MatMul::default();
    let train = app.sample_dataset(500, 1);
    let model = CprBuilder::new(app.space())
        .cells_per_dim(6)
        .rank(2)
        .fit(&train)
        .unwrap();
    // Wildly out-of-range probes: predictions stay positive/finite via
    // clamped cell lookup + bounded log extrapolation.
    for probe in [[1.0, 1.0, 1.0], [1e9, 1e9, 1e9], [4096.0, 1.0, 1e7]] {
        let p = model.predict(&probe);
        assert!(p.is_finite() && p > 0.0, "bad prediction {p} at {probe:?}");
    }
}

#[test]
fn duplicated_configurations_average() {
    // The same configuration measured with different times: the cell stores
    // the mean (paper §5.1).
    let mut data = Dataset::new();
    for _ in 0..10 {
        data.push(vec![100.0, 100.0], 1.0);
        data.push(vec![100.0, 100.0], 3.0);
    }
    let model = CprBuilder::new(space2())
        .cells_per_dim(4)
        .rank(1)
        .fit(&data)
        .unwrap();
    let p = model.predict(&[100.0, 100.0]);
    // Arithmetic mean is 2.0 (log taken after averaging).
    assert!((p / 2.0).ln().abs() < 0.3, "mean aggregation broken: {p}");
}

#[test]
fn rank_larger_than_grid_still_works() {
    let app = MatMul::default();
    let train = app.sample_dataset(400, 2);
    // Rank 32 over a 4x4x4 grid: heavily over-parameterized; ridge must
    // keep it stable.
    let model = CprBuilder::new(app.space())
        .cells_per_dim(4)
        .rank(32)
        .regularization(1e-4)
        .fit(&train)
        .unwrap();
    let m = model.evaluate(&train);
    assert!(m.mlogq.is_finite());
    assert!(m.mlogq < 1.0);
}
