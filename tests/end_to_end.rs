//! Integration tests spanning the full crate stack:
//! apps → grid → tensor → completion → core → metrics.

use cpr::apps::{all_benchmarks, Benchmark, MatMul};
use cpr::core::{serialize, CprBuilder, CprExtrapolatorBuilder, Loss, Metrics};
use cpr::grid::{ParamSpace, ParamSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// CPR must beat the best constant (geometric-mean) predictor on every
/// benchmark — the weakest meaningful accuracy bar, checked end to end.
#[test]
fn cpr_beats_constant_predictor_on_all_six_benchmarks() {
    for bench in all_benchmarks() {
        let train = bench.sample_dataset(2500, 1);
        let test = bench.sample_dataset(300, 2);
        // Coarse grid (high observation density even for the order-9
        // Kripke tensor) with a small rank sweep, as the paper tunes.
        let cpr_err = [2usize, 8]
            .iter()
            .map(|&rank| {
                CprBuilder::new(bench.space())
                    .cells_per_dim(4)
                    .rank(rank)
                    .regularization(1e-5)
                    .fit(&train)
                    .unwrap_or_else(|e| panic!("{}: {e}", bench.name()))
                    .evaluate(&test)
                    .mlogq
            })
            .fold(f64::INFINITY, f64::min);
        // Best constant in MLogQ sense: geometric mean of training times.
        let gm = (train.ys().iter().map(|v| v.ln()).sum::<f64>() / train.len() as f64).exp();
        let const_preds = vec![gm; test.len()];
        let const_err = Metrics::compute(&const_preds, &test.ys()).mlogq;
        assert!(
            cpr_err < const_err * 0.5,
            "{}: CPR {} vs constant {}",
            bench.name(),
            cpr_err,
            const_err
        );
    }
}

#[test]
fn serialization_roundtrip_through_file() {
    let app = MatMul::default();
    let train = app.sample_dataset(800, 3);
    let model = CprBuilder::new(app.space())
        .cells_per_dim(8)
        .rank(2)
        .fit(&train)
        .unwrap();
    let bytes = serialize::to_bytes(&model);
    let path = std::env::temp_dir().join("cpr_roundtrip_test.bin");
    std::fs::write(&path, &bytes).unwrap();
    let read = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let restored = serialize::from_bytes(&read).unwrap();
    let probe = [500.0, 600.0, 700.0];
    assert_eq!(model.predict(&probe), restored.predict(&probe));
}

#[test]
fn both_losses_agree_in_domain() {
    let app = MatMul::default();
    let train = app.sample_dataset(2000, 4);
    let test = app.sample_dataset(300, 5);
    let ls = CprBuilder::new(app.space())
        .cells_per_dim(8)
        .rank(4)
        .fit(&train)
        .unwrap()
        .evaluate(&test)
        .mlogq;
    let mq = CprBuilder::new(app.space())
        .cells_per_dim(8)
        .rank(4)
        .loss(Loss::MLogQ2)
        .fit(&train)
        .unwrap()
        .evaluate(&test)
        .mlogq;
    assert!(
        (ls - mq).abs() < 0.1,
        "losses disagree in-domain: ALS {ls} vs AMN {mq}"
    );
}

#[test]
fn extrapolator_tracks_power_law_scaling() {
    // Whole pipeline: restricted-domain sampling -> positive AMN model ->
    // rank-1 splines -> beyond-domain prediction, on the MM benchmark.
    let app = MatMul::default();
    let cap = 512.0;
    let space = ParamSpace::new(vec![
        ParamSpec::log_int("m", 32.0, cap),
        ParamSpec::log_int("n", 32.0, 4096.0),
        ParamSpec::log_int("k", 32.0, 4096.0),
    ]);
    let mut rng = StdRng::seed_from_u64(6);
    let mut train = cpr::core::Dataset::new();
    for _ in 0..2000 {
        let m = (32.0 * (cap / 32.0).powf(rng.gen::<f64>())).round();
        let n = (32.0 * 128.0_f64.powf(rng.gen::<f64>())).round();
        let k = (32.0 * 128.0_f64.powf(rng.gen::<f64>())).round();
        train.push(vec![m, n, k], app.base_time(&[m, n, k]));
    }
    let ex = CprExtrapolatorBuilder::new(space)
        .cells_per_dim(8)
        .rank(2)
        .regularization(1e-8)
        .fit(&train)
        .unwrap();
    // Extrapolate m 4-8x beyond the cap.
    let mut worst: f64 = 0.0;
    for m in [2048.0, 4096.0] {
        for nk in [128.0, 1024.0] {
            let pred = ex.predict(&[m, nk, nk]);
            let truth = app.base_time(&[m, nk, nk]);
            worst = worst.max((pred / truth).ln().abs());
        }
    }
    assert!(worst < 0.8, "extrapolation drift |logQ| = {worst}");
}

#[test]
fn metrics_are_consistent_between_paths() {
    // evaluate() must agree with manually computed Metrics.
    let app = MatMul::default();
    let train = app.sample_dataset(600, 7);
    let test = app.sample_dataset(100, 8);
    let model = CprBuilder::new(app.space())
        .cells_per_dim(6)
        .rank(2)
        .fit(&train)
        .unwrap();
    let auto = model.evaluate(&test);
    let preds: Vec<f64> = test.samples().iter().map(|s| model.predict(&s.x)).collect();
    let manual = Metrics::compute(&preds, &test.ys());
    assert_eq!(auto, manual);
}

#[test]
fn determinism_across_full_stack() {
    let run = || {
        let app = MatMul::default();
        let train = app.sample_dataset(500, 9);
        let model = CprBuilder::new(app.space())
            .cells_per_dim(6)
            .rank(3)
            .seed(17)
            .fit(&train)
            .unwrap();
        model.predict(&[123.0, 456.0, 789.0])
    };
    assert_eq!(run(), run(), "end-to-end pipeline must be deterministic");
}
