//! Extrapolating to unobserved scales (paper §5.3 / Figure 8).
//!
//! Machine-allocation estimation: you have MPI broadcast timings up to some
//! message size and want predictions for messages 4-16x larger than anything
//! measured. A plain CP model cannot leave its grid; the §5.3 technique
//! (positive AMN factors → rank-1 Perron vectors → MARS splines on the log
//! singular vectors) can.
//!
//! Run: `cargo run --release --example extrapolate_scaling`

use cpr::apps::{standard_normal, Benchmark, Broadcast};
use cpr::core::{CprExtrapolatorBuilder, Dataset};
use cpr::grid::{ParamSpace, ParamSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let app = Broadcast::default();
    // Training domain: messages only up to 4 MiB (the full space reaches
    // 64 MiB) — the modeling domain the extrapolator must escape.
    let msg_cap = (1u64 << 22) as f64;
    let space = ParamSpace::new(vec![
        ParamSpec::log_int("nodes", 1.0, 128.0),
        ParamSpec::log_int("ppn", 1.0, 64.0),
        ParamSpec::log_int("msg", 65536.0, msg_cap),
    ]);
    let mut rng = StdRng::seed_from_u64(9);
    let mut train = Dataset::new();
    for _ in 0..4096 {
        let nodes = (1.0 * 128.0_f64.powf(rng.gen::<f64>())).round();
        let ppn = (1.0 * 64.0_f64.powf(rng.gen::<f64>())).round();
        let msg = (65536.0 * (msg_cap / 65536.0).powf(rng.gen::<f64>())).round();
        let y = app.base_time(&[nodes, ppn, msg])
            * (app.noise_sigma() * standard_normal(&mut rng)).exp();
        train.push(vec![nodes, ppn, msg], y);
    }

    let ex = CprExtrapolatorBuilder::new(space)
        .cells_per_dim(12)
        .rank(3)
        .regularization(1e-7)
        .fit(&train)
        .expect("training failed");
    println!(
        "trained positive CPR model on broadcasts up to 4 MiB ({} samples)",
        train.len()
    );
    println!(
        "{:>10} {:>14} {:>14} {:>9}",
        "msg (MiB)", "predicted (s)", "actual (s)", "|logQ|"
    );
    let mut worst: f64 = 0.0;
    for shift in [22, 23, 24, 25, 26] {
        let msg = (1u64 << shift) as f64;
        let x = [64.0, 16.0, msg];
        let pred = ex.predict(&x);
        let truth = app.base_time(&x);
        let logq = (pred / truth).ln().abs();
        if shift > 22 {
            worst = worst.max(logq);
        }
        println!(
            "{:>10.0} {:>14.5e} {:>14.5e} {:>9.4}{}",
            msg / (1024.0 * 1024.0),
            pred,
            truth,
            logq,
            if shift == 22 {
                "  <- edge of training domain"
            } else {
                "  (extrapolated)"
            }
        );
    }
    println!(
        "worst extrapolation |logQ| = {worst:.4} (factor {:.3}x)",
        worst.exp()
    );
    assert!(
        worst < 0.7,
        "extrapolation should stay within a factor of 2"
    );
}
