//! Autotuning with a CPR surrogate: pick Kripke's fastest configuration.
//!
//! The paper's introduction motivates performance models with "optimal
//! tuning parameter selection". This example trains a CPR model on randomly
//! sampled Kripke configurations, then uses the *model* (not the machine) to
//! search the configuration sub-space (dset, gset, layout, solver) for a
//! fixed physics problem — and checks the pick against the true optimum.
//!
//! Run: `cargo run --release --example autotune_kripke`

use cpr::apps::{Benchmark, Kripke};
use cpr::core::CprBuilder;

fn main() {
    let app = Kripke::default();
    let train = app.sample_dataset(8192, 3);
    let model = CprBuilder::new(app.space())
        .cells_per_dim(8)
        .rank(8)
        .regularization(1e-6)
        .fit(&train)
        .expect("training failed");
    println!(
        "trained CPR on {} Kripke samples (tensor {:?}, {} bytes)",
        train.len(),
        model.grid().dims(),
        model.size_bytes()
    );

    // Fixed problem: 64 groups, legendre 3, 96 quadrature points, 2x32 node
    // layout. Tunables: dset, gset, layout, solver.
    let (groups, legendre, quad, tpp, ppn) = (64.0, 3.0, 96.0, 2.0, 32.0);
    let mut best_model: Option<(f64, Vec<f64>)> = None;
    let mut best_true: Option<(f64, Vec<f64>)> = None;
    let mut evaluated = 0usize;
    for dset in [8.0, 16.0, 32.0, 64.0] {
        for gset in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
            for layout in 0..6 {
                for solver in 0..2 {
                    let x = vec![
                        groups,
                        legendre,
                        quad,
                        dset,
                        gset,
                        layout as f64,
                        solver as f64,
                        tpp,
                        ppn,
                    ];
                    evaluated += 1;
                    let t_model = model.predict(&x);
                    let t_true = app.base_time(&x);
                    if best_model.as_ref().is_none_or(|(t, _)| t_model < *t) {
                        best_model = Some((t_model, x.clone()));
                    }
                    if best_true.as_ref().is_none_or(|(t, _)| t_true < *t) {
                        best_true = Some((t_true, x));
                    }
                }
            }
        }
    }
    let (t_pick, x_pick) = best_model.unwrap();
    let (t_opt, x_opt) = best_true.unwrap();
    let t_pick_true = app.base_time(&x_pick);
    println!("searched {evaluated} configurations through the model");
    println!("  model's pick : dset={} gset={} layout={} solver={} -> predicted {t_pick:.4e} s, actual {t_pick_true:.4e} s",
        x_pick[3], x_pick[4], x_pick[5], x_pick[6]);
    println!(
        "  true optimum : dset={} gset={} layout={} solver={} -> {t_opt:.4e} s",
        x_opt[3], x_opt[4], x_opt[5], x_opt[6]
    );
    let regret = t_pick_true / t_opt;
    println!("  tuning regret: {regret:.3}x (1.0 = perfect pick)");
    assert!(
        regret < 1.5,
        "surrogate pick should be within 50% of optimal"
    );
}
