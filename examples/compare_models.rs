//! Head-to-head: CPR vs the paper's baseline model families on ExaFMM.
//!
//! Reproduces the flavor of Figures 6/7 interactively: same training set,
//! log-transformed features/targets for the baselines (§6.0.4), test MLogQ
//! and model size per family.
//!
//! Run: `cargo run --release --example compare_models`

use cpr::apps::{Benchmark, ExaFmm};
use cpr::baselines::{
    Forest, ForestConfig, ForestKind, GaussianProcess, GpConfig, Knn, KnnConfig, Mars, MarsConfig,
    Mlp, MlpConfig, Regressor, SgrConfig, SparseGridRegression,
};
use cpr::core::{CprBuilder, Metrics};
use cpr::grid::{ParamSpace, ParamSpec};

fn log_features(space: &ParamSpace, x: &[f64]) -> Vec<f64> {
    space
        .params()
        .iter()
        .zip(x)
        .map(|(p, &v)| match p {
            ParamSpec::Numerical { .. } => p.h(v),
            ParamSpec::Categorical { .. } => v,
        })
        .collect()
}

fn main() {
    let app = ExaFmm::default();
    let space = app.space();
    let train = app.sample_dataset(4096, 21);
    let test = app.sample_dataset(800, 22);

    println!(
        "ExaFMM (6 parameters), {} train / {} test samples\n",
        train.len(),
        test.len()
    );
    println!("{:<22}{:>10}{:>14}", "model", "MLogQ", "size (bytes)");

    // CPR.
    let cpr = CprBuilder::new(space.clone())
        .cells_per_dim(8)
        .rank(8)
        .regularization(1e-6)
        .fit(&train)
        .unwrap();
    let m = cpr.evaluate(&test);
    println!(
        "{:<22}{:>10.4}{:>14}",
        "CPR (8 cells, rank 8)",
        m.mlogq,
        cpr.size_bytes()
    );

    // Baselines on log-transformed data.
    let xs: Vec<Vec<f64>> = train
        .samples()
        .iter()
        .map(|s| log_features(&space, &s.x))
        .collect();
    let ys: Vec<f64> = train.samples().iter().map(|s| s.y.ln()).collect();
    let x_test: Vec<Vec<f64>> = test
        .samples()
        .iter()
        .map(|s| log_features(&space, &s.x))
        .collect();
    let y_test = test.ys();

    let mut models: Vec<(&str, Box<dyn Regressor>)> = vec![
        (
            "SGR (level 4)",
            Box::new(SparseGridRegression::new(SgrConfig {
                level: 4,
                ..Default::default()
            })),
        ),
        (
            "MARS (degree 2)",
            Box::new(Mars::new(MarsConfig::default())),
        ),
        ("NN (64x64 relu)", Box::new(Mlp::new(MlpConfig::default()))),
        (
            "ET (32 trees)",
            Box::new(Forest::new(ForestConfig {
                kind: ForestKind::ExtraTrees,
                ..Default::default()
            })),
        ),
        (
            "GP (RBF)",
            Box::new(GaussianProcess::new(GpConfig::default())),
        ),
        ("KNN (k=4)", Box::new(Knn::new(KnnConfig::default()))),
    ];
    for (name, model) in &mut models {
        model.fit(&xs, &ys);
        let preds: Vec<f64> = x_test.iter().map(|x| model.predict(x).exp()).collect();
        let metrics = Metrics::compute(&preds, &y_test);
        println!(
            "{:<22}{:>10.4}{:>14}",
            *name,
            metrics.mlogq,
            model.size_bytes()
        );
    }
    println!("\nNote the size column: CPR's factor matrices grow linearly with");
    println!("tensor order, which is the paper's Figure 7 memory-efficiency claim.");
}
