//! Head-to-head: CPR vs the paper's baseline model families on ExaFMM.
//!
//! Reproduces the flavor of Figures 6/7 interactively — same training set,
//! test MLogQ and model size per family — through the **one** generic
//! `PerfModel` surface: every family (CPR with two optimizers, six
//! baselines) is fitted and evaluated by the same loop, with the §6.0.4
//! log transforms living inside the baseline bridge instead of being
//! repeated here.
//!
//! Run: `cargo run --release --example compare_models`

use cpr::apps::{Benchmark, ExaFmm};
use cpr::baselines::{
    Forest, ForestConfig, ForestKind, GaussianProcess, GpConfig, Knn, KnnConfig, Mars, MarsConfig,
    Mlp, MlpConfig, Regressor, SgrConfig, SparseGridRegression,
};
use cpr::core::{BaselineFamily, CprBuilder, Optimizer, PerfModelBuilder};

fn main() {
    let app = ExaFmm::default();
    let space = app.space();
    let train = app.sample_dataset(4096, 21);
    let test = app.sample_dataset(800, 22);

    println!(
        "ExaFMM (6 parameters), {} train / {} test samples\n",
        train.len(),
        test.len()
    );
    println!("{:<22}{:>10}{:>14}", "model", "MLogQ", "size (bytes)");

    // Every family is just a PerfModelBuilder; one loop fits, evaluates,
    // and reports them all.
    let baseline = |name: &'static str, f: fn() -> Box<dyn Regressor>| {
        Box::new(BaselineFamily::new(name, space.clone(), f)) as Box<dyn PerfModelBuilder>
    };
    let families: Vec<(&str, Box<dyn PerfModelBuilder>)> = vec![
        (
            "CPR (8 cells, rank 8)",
            Box::new(
                CprBuilder::new(space.clone())
                    .cells_per_dim(8)
                    .rank(8)
                    .regularization(1e-6),
            ),
        ),
        (
            "CPR-Tucker (rank 4)",
            Box::new(
                CprBuilder::new(space.clone())
                    .cells_per_dim(8)
                    .rank(4)
                    .regularization(1e-6)
                    .optimizer(Optimizer::TuckerAls),
            ),
        ),
        (
            "SGR (level 4)",
            baseline("SGR", || {
                Box::new(SparseGridRegression::new(SgrConfig {
                    level: 4,
                    ..Default::default()
                }))
            }),
        ),
        (
            "MARS (degree 2)",
            baseline("MARS", || Box::new(Mars::new(MarsConfig::default()))),
        ),
        (
            "NN (64x64 relu)",
            baseline("NN", || Box::new(Mlp::new(MlpConfig::default()))),
        ),
        (
            "ET (32 trees)",
            baseline("ET", || {
                Box::new(Forest::new(ForestConfig {
                    kind: ForestKind::ExtraTrees,
                    ..Default::default()
                }))
            }),
        ),
        (
            "GP (RBF)",
            baseline("GP", || Box::new(GaussianProcess::new(GpConfig::default()))),
        ),
        (
            "KNN (k=4)",
            baseline("KNN", || Box::new(Knn::new(KnnConfig::default()))),
        ),
    ];
    for (label, builder) in &families {
        let model = builder.fit_boxed(&train).expect("fit failed");
        let metrics = model.evaluate(&test);
        println!(
            "{:<22}{:>10.4}{:>14}",
            *label,
            metrics.mlogq,
            model.size_bytes()
        );
    }
    println!("\nNote the size column: CPR's factor matrices grow linearly with");
    println!("tensor order, which is the paper's Figure 7 memory-efficiency claim.");
}
