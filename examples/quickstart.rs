//! Quickstart: model a benchmark's execution time with CPR in ~20 lines.
//!
//! Trains the paper's §5.2 interpolation model on synthetic GEMM timings,
//! evaluates it with the scale-independent MLogQ metric, and round-trips the
//! model through its binary serialization.
//!
//! Run: `cargo run --release --example quickstart`

use cpr::apps::{Benchmark, MatMul};
use cpr::core::{serialize, CprBuilder};

fn main() {
    // A benchmark = a parameter space (here: m, n, k in [32, 4096], log
    // scale) plus measured execution times. `cpr::apps` synthesizes the
    // measurements; with real data you'd fill a `Dataset` yourself.
    let app = MatMul::default();
    let train = app.sample_dataset(4096, 7);
    let test = app.sample_dataset(512, 11);

    // Discretize each parameter into 16 log-spaced cells, store per-cell
    // mean times in a 16x16x16 tensor, and complete it with a rank-4 CP
    // decomposition (ALS on log times).
    let model = CprBuilder::new(app.space())
        .cells_per_dim(16)
        .rank(4)
        .regularization(1e-6)
        .fit(&train)
        .expect("training failed");

    let metrics = model.evaluate(&test);
    println!(
        "CPR on GEMM: {} training samples -> {} test configurations",
        train.len(),
        test.len()
    );
    println!("  tensor dims      : {:?}", model.grid().dims());
    println!(
        "  observed cells   : {} ({:.1}% dense)",
        model.observed_cells(),
        100.0 * model.density()
    );
    println!("  model size       : {} bytes", model.size_bytes());
    println!(
        "  MLogQ            : {:.4}  (mean factor {:.3}x)",
        metrics.mlogq,
        metrics.mean_factor()
    );
    println!("  MAPE             : {:.2}%", 100.0 * metrics.mape);

    // Point predictions.
    for (m, n, k) in [
        (100.0, 100.0, 100.0),
        (1000.0, 2000.0, 500.0),
        (4000.0, 4000.0, 4000.0),
    ] {
        let t_pred = model.predict(&[m, n, k]);
        let t_true = app.base_time(&[m, n, k]);
        println!(
            "  predict GEMM {m:>6.0}x{n:>6.0}x{k:>6.0}: {t_pred:.4e} s (model) vs {t_true:.4e} s (truth)"
        );
    }

    // Serialize / restore.
    let bytes = serialize::to_bytes(&model);
    let restored = serialize::from_bytes(&bytes).expect("roundtrip failed");
    let probe = [777.0, 888.0, 999.0];
    assert_eq!(model.predict(&probe), restored.predict(&probe));
    println!(
        "  serialized {} bytes; restored model agrees exactly",
        bytes.len()
    );
}
