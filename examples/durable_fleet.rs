//! Durable fleet: snapshot a model fleet to disk, lose the process,
//! restore it bitwise.
//!
//! Fits a few CPR models, registers them in a `ModelRegistry`, commits
//! one durable generation through `cpr::store::FleetStore` (each record
//! a checksummed frame written via temp-file + read-back verify + atomic
//! rename, fleet membership committed last in a generation-numbered
//! manifest), drops everything, then recovers into a fresh registry and
//! checks predictions are bit-for-bit what the dead process served.
//!
//! Run: `cargo run --release --example durable_fleet`

use cpr::apps::{Benchmark, MatMul};
use cpr::core::CprBuilder;
use cpr::registry::{ModelId, ModelRegistry};
use cpr::store::FleetStore;

fn main() {
    let dir = std::env::temp_dir().join(format!("cpr_durable_fleet_{}", std::process::id()));
    let app = MatMul::default();
    let probe = [512.0, 512.0, 512.0];

    // Fit a small fleet: one model per "machine", same benchmark.
    let fleet: Vec<(ModelId, _)> = (0..3)
        .map(|node| {
            let model = CprBuilder::new(app.space())
                .cells_per_dim(6)
                .rank(2)
                .regularization(1e-6)
                .seed(node)
                .fit(&app.sample_dataset(256, 7 + node))
                .expect("training failed");
            (ModelId::new("gemm", format!("node{node}"), "time"), model)
        })
        .collect();
    let served: Vec<f64> = fleet.iter().map(|(_, m)| m.predict(&probe)).collect();

    // Serve it, commit one durable generation, then "crash": every
    // in-memory handle is dropped; only the directory survives.
    {
        let registry = ModelRegistry::new();
        for (id, model) in &fleet {
            registry.insert(id.clone(), model.clone());
        }
        let store = FleetStore::open_dir(&dir).expect("open store dir");
        let generation = registry.snapshot_into(&store).expect("commit fleet");
        println!(
            "committed generation {generation} ({} models) to {}",
            fleet.len(),
            dir.display()
        );
    }

    // Restart: recover the committed generation and serve it, bitwise.
    let store = FleetStore::open_dir(&dir).expect("reopen store dir");
    let revived = ModelRegistry::new();
    let report = revived.restore(&store).expect("restore fleet");
    assert!(report.skipped.is_empty(), "no record may fail verification");
    println!("restored {} model(s) after restart", report.restored.len());
    for ((id, _), &want) in fleet.iter().zip(&served) {
        let got = revived.predict(id, &probe).expect("restored model serves");
        assert_eq!(got.to_bits(), want.to_bits(), "{id:?} must serve bitwise");
        println!(
            "  {:>22}  GEMM 512^3 -> {got:.6e} s  (bitwise match)",
            format!("{id}")
        );
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
