//! Vendored, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to a crates registry, so the CPR
//! workspace vendors the thin slice of `rand` it actually uses (see
//! `DESIGN.md`, "Offline dependency policy"): [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! `gen`/`gen_range`/`gen_bool`, and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic,
//! high-quality, and stable across platforms, which is all the stack needs:
//! every caller seeds explicitly and the test suites pin those seeds.

pub mod rngs;
pub mod seq;

mod uniform;

pub use uniform::SampleRange;

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible uniformly from raw generator output via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}
