//! Slice helpers, mirroring `rand::seq::SliceRandom`.

use crate::{Rng, RngCore};

pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R>(&mut self, rng: &mut R)
    where
        R: Rng + RngCore;

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R>(&self, rng: &mut R) -> Option<&Self::Item>
    where
        R: Rng + RngCore;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R>(&mut self, rng: &mut R)
    where
        R: Rng + RngCore,
    {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R>(&self, rng: &mut R) -> Option<&T>
    where
        R: Rng + RngCore,
    {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}
