//! Named generators. Only [`StdRng`] is provided: a deterministic
//! xoshiro256** (not the upstream ChaCha12 — cryptographic strength is not a
//! requirement anywhere in this workspace, reproducibility is).

use crate::{RngCore, SeedableRng};

/// Deterministic 256-bit-state generator (xoshiro256**).
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // All-zero state is a fixed point of xoshiro; reseed it.
        if s == [0, 0, 0, 0] {
            return Self::seed_from_u64(0);
        }
        StdRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}
