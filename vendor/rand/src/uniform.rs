//! Uniform sampling from range expressions, backing [`crate::Rng::gen_range`].

use crate::{RngCore, Standard};
use std::ops::{Range, RangeInclusive};

/// A range that can produce a uniformly distributed value.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Lemire-style unbiased bounded sampling via 128-bit widening: a uniform
/// value in `0..span`. `span == 0` is the caller's full-domain case and must
/// not reach here.
fn lemire<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    let mut m = (rng.next_u64() as u128) * (span as u128);
    if (m as u64) < span {
        let t = span.wrapping_neg() % span;
        while (m as u64) < t {
            m = (rng.next_u64() as u128) * (span as u128);
        }
    }
    (m >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(lemire(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                // The full-domain case is handled above, so the inclusive
                // span `hi - lo + 1` fits in u64 (types are <= 64-bit) —
                // computing it wide avoids the `hi + 1` overflow when
                // `hi == MAX` but `lo != MIN`.
                let span = (hi as u128).wrapping_sub(lo as u128) as u64 + 1;
                lo.wrapping_add(lemire(rng, span) as $t)
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f64, f32);

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn inclusive_range_ending_at_type_max() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(1u8..=u8::MAX);
            assert!(v >= 1);
            let v = rng.gen_range(1u64..=u64::MAX);
            assert!(v >= 1);
            let v = rng.gen_range(-3i64..=i64::MAX);
            assert!(v >= -3);
        }
    }

    #[test]
    fn full_domain_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(8);
        let _ = rng.gen_range(u64::MIN..=u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
        let _ = rng.gen_range(u8::MIN..=u8::MAX);
    }

    #[test]
    fn exclusive_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..13);
            assert!((10..13).contains(&v));
            let v = rng.gen_range(i64::MIN..i64::MAX);
            assert!(v < i64::MAX);
        }
    }
}
