//! Vendored, API-compatible subset of `proptest` (see `DESIGN.md`, "Offline
//! dependency policy").
//!
//! Supports the surface the CPR property suites use: the [`proptest!`] macro
//! with a `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! range/tuple/`collection::vec` strategies, `prop_map` / `prop_flat_map`
//! combinators, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, on purpose:
//!
//! * **No shrinking.** A failing case panics with the generated inputs via
//!   the assertion message; the RNG is seeded deterministically per test
//!   (from the test's name), so failures reproduce exactly under
//!   `cargo test`.
//! * **Bounded runtime.** The case count is exactly
//!   `ProptestConfig::with_cases(n)` — there is no persistence file, no
//!   fork, no timeout machinery. The `PROPTEST_CASES` environment variable,
//!   when set, caps the count for even faster CI smoke runs.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Stable per-test seed: FNV-1a over the test path, fixed across runs
    /// and platforms so proptest failures are reproducible.
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Effective case count: the configured count, optionally capped by the
    /// `PROPTEST_CASES` environment variable.
    pub fn case_count(configured: u32) -> u32 {
        match std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
        {
            Some(cap) => configured.min(cap.max(1)),
            None => configured,
        }
    }
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let cases = $crate::__rt::case_count(config.cases);
            let seed = $crate::__rt::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(seed);
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            while accepted < cases {
                attempts += 1;
                if attempts > cases.saturating_mul(20).max(1000) {
                    panic!(
                        "proptest {}: too many prop_assume! rejections ({} attempts for {} cases)",
                        stringify!($name), attempts, cases
                    );
                }
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => continue,
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Property assertion: panics with the formatted message on failure. Unlike
/// upstream there is no shrink phase, so this is `assert!` with proptest's
/// spelling.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { ::std::assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { ::std::assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { ::std::assert_ne!($($t)*) };
}

/// Discards the current case (regenerates fresh inputs) when `cond` fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
