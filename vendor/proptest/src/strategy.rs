//! Value-generation strategies: ranges, tuples, maps.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value` from the deterministic
/// test RNG. Upstream proptest pairs this with a shrinking `ValueTree`; this
/// vendored subset generates flat values only.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            f,
            reason,
        }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    source: S,
    f: F,
    reason: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.source.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 10000 consecutive candidates",
            self.reason
        );
    }
}

/// References to strategies are strategies (lets `&strat` be reused).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, f32, usize, u64, u32, u16, u8, i64, i32);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
