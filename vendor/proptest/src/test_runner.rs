//! Test-runner configuration and case-level control flow.

/// Subset of upstream's config: only the case count is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a generated case did not complete. Assertion failures panic directly
/// (no shrinking in the vendored subset), so the only variant is the
/// `prop_assume!` rejection.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    Reject,
}
