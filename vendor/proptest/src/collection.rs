//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Length specification for [`vec`]: a fixed size or a size range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.lo == self.size.hi_inclusive {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..=self.size.hi_inclusive)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `Vec`s whose elements come from `element` and whose length
/// comes from `size` (a `usize` or a range of `usize`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
