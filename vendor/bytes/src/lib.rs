//! Vendored, API-compatible subset of the `bytes` crate (see `DESIGN.md`,
//! "Offline dependency policy"): just the little-endian `Buf`/`BufMut`
//! accessors and the `Bytes`/`BytesMut` owners that the CPR model
//! serializer uses. Backed by plain `Vec<u8>` — no refcounted slices.

use std::ops::Deref;

/// Immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Write-side accessors (little-endian only; that is all CPR's format uses).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side accessors. The `&[u8]` impl advances the slice in place, as in
/// upstream `bytes`. All getters panic when under-length — callers bound
/// reads with [`Buf::remaining`] first.
pub trait Buf {
    fn remaining(&self) -> usize;

    fn copy_to_bytes(&mut self, len: usize) -> Bytes;

    fn get_u8(&mut self) -> u8 {
        self.copy_to_bytes(1)[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.copy_to_bytes(2)[..].try_into().unwrap())
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.copy_to_bytes(4)[..].try_into().unwrap())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.copy_to_bytes(8)[..].try_into().unwrap())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.copy_to_bytes(8)[..].try_into().unwrap())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(
            len <= self.len(),
            "buffer underflow: {} < {len}",
            self.len()
        );
        let (head, tail) = self.split_at(len);
        let out = Bytes::copy_from_slice(head);
        *self = tail;
        out
    }
}
