//! Vendored stand-in for `rayon` (see `DESIGN.md`, "Offline dependency
//! policy") — a **real** data-parallel implementation, not a sequential
//! forwarder.
//!
//! # Execution model
//!
//! Parallel iterators are *splittable producers*: a producer knows its
//! length, can split itself at an index, and can degrade into an ordinary
//! sequential iterator over its block. A terminal operation (`collect`,
//! `for_each`, `min_by`, …) splits the producer into `~4x` as many
//! contiguous blocks as there are worker threads, pushes the blocks onto a
//! shared queue, and lets workers *pull* blocks until the queue drains
//! (work-sharing — a fast worker processes more blocks than a slow one).
//! Workers are scoped threads (`std::thread::scope`), so borrowed data flows
//! into them without `'static` bounds and panics propagate to the caller.
//!
//! # Thread-count resolution
//!
//! The global default is resolved lazily, once per process:
//! `CPR_NUM_THREADS` (when set to a positive integer) overrides
//! `std::thread::available_parallelism()`. A [`ThreadPool`] built via
//! [`ThreadPoolBuilder::num_threads`] overrides the default for everything
//! run under [`ThreadPool::install`] on the calling thread. With one thread
//! (or one item) every terminal runs inline with zero spawns.
//!
//! # Determinism contract
//!
//! For the optimizer kernels built on this shim, results are **bitwise
//! independent of the thread count**: items are computed independently and
//! reassembled in block order, and no terminal performs a floating-point
//! reduction whose grouping depends on the block layout (`min_by` keeps the
//! *earliest* minimal item, which is block-boundary independent). Callers
//! that need a deterministic f64 sum must collect per-item values and sum
//! them sequentially — this is exactly what the ALS/AMN fused objectives do.
//!
//! # Deliberate differences from upstream rayon
//!
//! * combinator closures additionally require `Clone` (splitting a producer
//!   clones the closure; capture-by-reference closures — the only kind the
//!   workspace uses — are always `Clone`);
//! * blocks are split eagerly instead of adaptively (no work-stealing);
//! * worker threads are scoped per region rather than persistent, so each
//!   region pays thread spawn cost (tens of µs per worker) — profitable for
//!   the row-sweep and tuning regions this workspace runs, but a region
//!   whose total work is only microseconds can be slower than sequential;
//! * **nested regions serialize**: a `par_iter` entered from inside a
//!   worker runs inline (upstream shares one bounded pool instead), so
//!   total threads stay bounded by the outermost region's width and
//!   `ThreadPool::install(1)` genuinely caps all parallelism beneath it;
//! * `enumerate` is available on indexed producers only, as upstream;
//! * the combinator surface is the subset the workspace uses.

use std::panic::resume_unwind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// How many blocks each worker thread gets on average. More blocks give
/// better load balance for irregular items at the price of queue traffic.
const BLOCKS_PER_THREAD: usize = 4;

// ---------------------------------------------------------------------------
// Thread-count configuration
// ---------------------------------------------------------------------------

/// Resolve a worker count from an optional `CPR_NUM_THREADS` value and the
/// machine's available parallelism. Non-numeric or zero overrides fall back
/// to the hardware count; the result is always >= 1.
pub fn resolve_num_threads(env_override: Option<&str>, available: usize) -> usize {
    match env_override.and_then(|s| s.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => available.max(1),
    }
}

/// Lazily initialized process-wide default worker count.
fn default_num_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        let env = std::env::var("CPR_NUM_THREADS").ok();
        let available = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        resolve_num_threads(env.as_deref(), available)
    })
}

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`]; 0 = none.
    static INSTALLED_THREADS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// The worker count parallel regions entered from this thread will use.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(|c| c.get());
    if installed > 0 {
        installed
    } else {
        default_num_threads()
    }
}

/// Error type for [`ThreadPoolBuilder::build`] (shape-compatible with
/// upstream; building never actually fails here).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for an explicitly sized [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Worker count for the pool; 0 (the default) means "use the global
    /// default resolution".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                default_num_threads()
            } else {
                self.num_threads
            },
        })
    }
}

/// A virtual pool: worker threads are scoped per parallel region, so the
/// pool itself only carries the configured width.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `op` with this pool's thread count governing every parallel
    /// region entered from the calling thread (restored afterwards, also on
    /// panic).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let _guard = install_guard(self.num_threads);
        op()
    }
}

/// RAII override of the calling thread's region width; restores the prior
/// value on drop (including during unwinding).
fn install_guard(n: usize) -> impl Drop {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            INSTALLED_THREADS.with(|c| c.set(self.0));
        }
    }
    let prev = INSTALLED_THREADS.with(|c| c.get());
    INSTALLED_THREADS.with(|c| c.set(n));
    Restore(prev)
}

// ---------------------------------------------------------------------------
// Core drive loop
// ---------------------------------------------------------------------------

/// Split `p` into at most `nblocks` nearly equal contiguous blocks.
fn split_blocks<P: ParallelIterator>(p: P, nblocks: usize) -> Vec<P> {
    let mut blocks = Vec::with_capacity(nblocks);
    let mut rest = p;
    let mut remaining = rest.sp_len();
    for i in 0..nblocks - 1 {
        let take = remaining / (nblocks - i);
        let (left, right) = rest.sp_split_at(take);
        blocks.push(left);
        rest = right;
        remaining -= take;
    }
    blocks.push(rest);
    blocks
}

/// Run `per_block` over every block of `p`, in parallel, returning the
/// per-block results **in block order**. The calling thread works too, so a
/// region on a 1-thread pool performs zero spawns.
fn drive<P, R>(p: P, per_block: impl Fn(P) -> R + Sync) -> Vec<R>
where
    P: ParallelIterator,
    R: Send,
{
    let n = p.sp_len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 {
        return vec![per_block(p)];
    }
    let nblocks = (threads * BLOCKS_PER_THREAD).min(n);
    let blocks: Vec<Mutex<Option<P>>> = split_blocks(p, nblocks)
        .into_iter()
        .map(|b| Mutex::new(Some(b)))
        .collect();
    let next = AtomicUsize::new(0);
    let worker = |out: &mut Vec<(usize, R)>| {
        // Nested parallel regions entered from a worker run inline: the
        // region's width already saturates the budgeted parallelism, and
        // without this cap an inner `par_iter` (e.g. an ALS mode update
        // inside a parallel hyper-parameter sweep) would spawn another
        // default-width set of threads from every worker — ~width² threads
        // per region. Upstream bounds this by running nested work in the
        // same pool; we bound it by serializing below the first level.
        let _guard = install_guard(1);
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= nblocks {
                break;
            }
            let block = blocks[i]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("block already taken");
            out.push((i, per_block(block)));
        }
    };

    let mut ordered: Vec<(usize, R)> = Vec::with_capacity(nblocks);
    std::thread::scope(|s| {
        let handles: Vec<_> = (1..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    worker(&mut out);
                    out
                })
            })
            .collect();
        // The calling thread participates instead of blocking.
        worker(&mut ordered);
        let mut panic_payload = None;
        for h in handles {
            match h.join() {
                Ok(part) => ordered.extend(part),
                Err(payload) => panic_payload = Some(payload),
            }
        }
        if let Some(payload) = panic_payload {
            resume_unwind(payload);
        }
    });
    ordered.sort_unstable_by_key(|&(i, _)| i);
    ordered.into_iter().map(|(_, r)| r).collect()
}

/// Sequential `min_by` keeping the **earliest** minimal element, so the
/// winner does not depend on how the index space was blocked.
fn seq_min_by<T>(
    iter: impl Iterator<Item = T>,
    cmp: &(impl Fn(&T, &T) -> std::cmp::Ordering + ?Sized),
) -> Option<T> {
    let mut best: Option<T> = None;
    for item in iter {
        match &best {
            Some(b) if cmp(&item, b) == std::cmp::Ordering::Less => best = Some(item),
            Some(_) => {}
            None => best = Some(item),
        }
    }
    best
}

// ---------------------------------------------------------------------------
// The parallel-iterator trait
// ---------------------------------------------------------------------------

/// A splittable, length-aware producer of `Send` items. The `sp_*` methods
/// are the producer plumbing (never called at use sites); everything else is
/// the user-facing combinator/terminal surface.
pub trait ParallelIterator: Sized + Send {
    type Item: Send;
    type SeqIter: Iterator<Item = Self::Item>;

    /// Number of splittable positions (pre-filter item count).
    fn sp_len(&self) -> usize;
    /// Split into `[0, mid)` and `[mid, len)`.
    fn sp_split_at(self, mid: usize) -> (Self, Self);
    /// Degrade into a sequential iterator over this block.
    fn sp_into_seq(self) -> Self::SeqIter;

    // -- combinators --------------------------------------------------------

    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send + Clone,
    {
        Map { base: self, f }
    }

    /// `map` with a per-block scratch value created by `init` (the upstream
    /// `map_init`: scratch is created once per split, not once per item).
    fn map_init<T, R, INIT, F>(self, init: INIT, f: F) -> MapInit<Self, INIT, F>
    where
        R: Send,
        INIT: Fn() -> T + Sync + Send + Clone,
        F: Fn(&mut T, Self::Item) -> R + Sync + Send + Clone,
    {
        MapInit {
            base: self,
            init,
            f,
        }
    }

    fn filter_map<R, F>(self, f: F) -> FilterMap<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> Option<R> + Sync + Send + Clone,
    {
        FilterMap { base: self, f }
    }

    // -- terminals ----------------------------------------------------------

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        drive(self, |block| block.sp_into_seq().for_each(&f));
    }

    /// `for_each` with a per-block scratch value created by `init`.
    fn for_each_init<T, INIT, F>(self, init: INIT, f: F)
    where
        INIT: Fn() -> T + Sync + Send,
        F: Fn(&mut T, Self::Item) + Sync + Send,
    {
        drive(self, |block| {
            let mut scratch = init();
            for item in block.sp_into_seq() {
                f(&mut scratch, item);
            }
        });
    }

    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        drive(self, |block| block.sp_into_seq().collect::<Vec<_>>())
            .into_iter()
            .flatten()
            .collect()
    }

    /// Earliest minimal element under `cmp` (deterministic under ties
    /// regardless of thread count; upstream returns the last).
    fn min_by<F>(self, cmp: F) -> Option<Self::Item>
    where
        F: Fn(&Self::Item, &Self::Item) -> std::cmp::Ordering + Sync + Send,
    {
        let minima = drive(self, |block| seq_min_by(block.sp_into_seq(), &cmp));
        seq_min_by(minima.into_iter().flatten(), &cmp)
    }

    fn count(self) -> usize {
        drive(self, |block| block.sp_into_seq().count())
            .into_iter()
            .sum()
    }
}

/// Producers whose items have stable global indices (slices, ranges, maps
/// thereof) — the only ones where `enumerate` is meaningful.
pub trait IndexedParallelIterator: ParallelIterator {
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Leaf producers
// ---------------------------------------------------------------------------

/// `slice.par_iter()`.
pub struct SliceParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;
    type SeqIter = std::slice::Iter<'a, T>;
    fn sp_len(&self) -> usize {
        self.slice.len()
    }
    fn sp_split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(mid);
        (Self { slice: l }, Self { slice: r })
    }
    fn sp_into_seq(self) -> Self::SeqIter {
        self.slice.iter()
    }
}
impl<T: Sync> IndexedParallelIterator for SliceParIter<'_, T> {}

/// `slice.par_iter_mut()`.
pub struct SliceParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for SliceParIterMut<'a, T> {
    type Item = &'a mut T;
    type SeqIter = std::slice::IterMut<'a, T>;
    fn sp_len(&self) -> usize {
        self.slice.len()
    }
    fn sp_split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at_mut(mid);
        (Self { slice: l }, Self { slice: r })
    }
    fn sp_into_seq(self) -> Self::SeqIter {
        self.slice.iter_mut()
    }
}
impl<T: Send> IndexedParallelIterator for SliceParIterMut<'_, T> {}

/// `slice.par_chunks_mut(n)` — disjoint `&mut [T]` chunks; the enabling
/// producer for in-place parallel factor updates.
pub struct SliceChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParallelIterator for SliceChunksMut<'a, T> {
    type Item = &'a mut [T];
    type SeqIter = std::slice::ChunksMut<'a, T>;
    fn sp_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn sp_split_at(self, mid: usize) -> (Self, Self) {
        let at = (mid * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(at);
        (
            Self {
                slice: l,
                size: self.size,
            },
            Self {
                slice: r,
                size: self.size,
            },
        )
    }
    fn sp_into_seq(self) -> Self::SeqIter {
        self.slice.chunks_mut(self.size)
    }
}
impl<T: Send> IndexedParallelIterator for SliceChunksMut<'_, T> {}

/// `slice.par_chunks(n)`.
pub struct SliceChunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for SliceChunks<'a, T> {
    type Item = &'a [T];
    type SeqIter = std::slice::Chunks<'a, T>;
    fn sp_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn sp_split_at(self, mid: usize) -> (Self, Self) {
        let at = (mid * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at(at);
        (
            Self {
                slice: l,
                size: self.size,
            },
            Self {
                slice: r,
                size: self.size,
            },
        )
    }
    fn sp_into_seq(self) -> Self::SeqIter {
        self.slice.chunks(self.size)
    }
}
impl<T: Sync> IndexedParallelIterator for SliceChunks<'_, T> {}

/// `(a..b).into_par_iter()` over `usize`.
pub struct RangeParIter {
    range: std::ops::Range<usize>,
}

impl ParallelIterator for RangeParIter {
    type Item = usize;
    type SeqIter = std::ops::Range<usize>;
    fn sp_len(&self) -> usize {
        self.range.len()
    }
    fn sp_split_at(self, mid: usize) -> (Self, Self) {
        let split = self.range.start + mid;
        (
            Self {
                range: self.range.start..split,
            },
            Self {
                range: split..self.range.end,
            },
        )
    }
    fn sp_into_seq(self) -> Self::SeqIter {
        self.range
    }
}
impl IndexedParallelIterator for RangeParIter {}

/// `vec.into_par_iter()`.
pub struct VecParIter<T> {
    vec: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;
    type SeqIter = std::vec::IntoIter<T>;
    fn sp_len(&self) -> usize {
        self.vec.len()
    }
    fn sp_split_at(mut self, mid: usize) -> (Self, Self) {
        let right = self.vec.split_off(mid);
        (self, Self { vec: right })
    }
    fn sp_into_seq(self) -> Self::SeqIter {
        self.vec.into_iter()
    }
}
impl<T: Send> IndexedParallelIterator for VecParIter<T> {}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

pub struct Map<P, F> {
    base: P,
    f: F,
}

pub struct MapSeq<I, F> {
    inner: I,
    f: F,
}

impl<I: Iterator, R, F: Fn(I::Item) -> R> Iterator for MapSeq<I, F> {
    type Item = R;
    fn next(&mut self) -> Option<R> {
        self.inner.next().map(&self.f)
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync + Send + Clone,
{
    type Item = R;
    type SeqIter = MapSeq<P::SeqIter, F>;
    fn sp_len(&self) -> usize {
        self.base.sp_len()
    }
    fn sp_split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.sp_split_at(mid);
        (
            Self {
                base: l,
                f: self.f.clone(),
            },
            Self { base: r, f: self.f },
        )
    }
    fn sp_into_seq(self) -> Self::SeqIter {
        MapSeq {
            inner: self.base.sp_into_seq(),
            f: self.f,
        }
    }
}
impl<P, R, F> IndexedParallelIterator for Map<P, F>
where
    P: IndexedParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync + Send + Clone,
{
}

pub struct MapInit<P, INIT, F> {
    base: P,
    init: INIT,
    f: F,
}

pub struct MapInitSeq<I, T, F> {
    inner: I,
    scratch: T,
    f: F,
}

impl<I: Iterator, T, R, F: Fn(&mut T, I::Item) -> R> Iterator for MapInitSeq<I, T, F> {
    type Item = R;
    fn next(&mut self) -> Option<R> {
        let item = self.inner.next()?;
        Some((self.f)(&mut self.scratch, item))
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<P, T, R, INIT, F> ParallelIterator for MapInit<P, INIT, F>
where
    P: ParallelIterator,
    R: Send,
    INIT: Fn() -> T + Sync + Send + Clone,
    F: Fn(&mut T, P::Item) -> R + Sync + Send + Clone,
{
    type Item = R;
    type SeqIter = MapInitSeq<P::SeqIter, T, F>;
    fn sp_len(&self) -> usize {
        self.base.sp_len()
    }
    fn sp_split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.sp_split_at(mid);
        (
            Self {
                base: l,
                init: self.init.clone(),
                f: self.f.clone(),
            },
            Self {
                base: r,
                init: self.init,
                f: self.f,
            },
        )
    }
    fn sp_into_seq(self) -> Self::SeqIter {
        MapInitSeq {
            scratch: (self.init)(),
            inner: self.base.sp_into_seq(),
            f: self.f,
        }
    }
}
impl<P, T, R, INIT, F> IndexedParallelIterator for MapInit<P, INIT, F>
where
    P: IndexedParallelIterator,
    R: Send,
    INIT: Fn() -> T + Sync + Send + Clone,
    F: Fn(&mut T, P::Item) -> R + Sync + Send + Clone,
{
}

pub struct FilterMap<P, F> {
    base: P,
    f: F,
}

pub struct FilterMapSeq<I, F> {
    inner: I,
    f: F,
}

impl<I: Iterator, R, F: Fn(I::Item) -> Option<R>> Iterator for FilterMapSeq<I, F> {
    type Item = R;
    fn next(&mut self) -> Option<R> {
        loop {
            let item = self.inner.next()?;
            if let Some(mapped) = (self.f)(item) {
                return Some(mapped);
            }
        }
    }
}

impl<P, R, F> ParallelIterator for FilterMap<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> Option<R> + Sync + Send + Clone,
{
    type Item = R;
    type SeqIter = FilterMapSeq<P::SeqIter, F>;
    fn sp_len(&self) -> usize {
        self.base.sp_len()
    }
    fn sp_split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.sp_split_at(mid);
        (
            Self {
                base: l,
                f: self.f.clone(),
            },
            Self { base: r, f: self.f },
        )
    }
    fn sp_into_seq(self) -> Self::SeqIter {
        FilterMapSeq {
            inner: self.base.sp_into_seq(),
            f: self.f,
        }
    }
}

pub struct Enumerate<P> {
    base: P,
    offset: usize,
}

pub struct EnumerateSeq<I> {
    inner: I,
    next_index: usize,
}

impl<I: Iterator> Iterator for EnumerateSeq<I> {
    type Item = (usize, I::Item);
    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next()?;
        let i = self.next_index;
        self.next_index += 1;
        Some((i, item))
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<P: IndexedParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);
    type SeqIter = EnumerateSeq<P::SeqIter>;
    fn sp_len(&self) -> usize {
        self.base.sp_len()
    }
    fn sp_split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.sp_split_at(mid);
        (
            Self {
                base: l,
                offset: self.offset,
            },
            Self {
                base: r,
                offset: self.offset + mid,
            },
        )
    }
    fn sp_into_seq(self) -> Self::SeqIter {
        EnumerateSeq {
            inner: self.base.sp_into_seq(),
            next_index: self.offset,
        }
    }
}
impl<P: IndexedParallelIterator> IndexedParallelIterator for Enumerate<P> {}

// ---------------------------------------------------------------------------
// Entry-point traits
// ---------------------------------------------------------------------------

/// `.into_par_iter()`.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = RangeParIter;
    fn into_par_iter(self) -> RangeParIter {
        RangeParIter { range: self }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;
    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { vec: self }
    }
}

/// `.par_iter()`.
pub trait IntoParallelRefIterator<'data> {
    type Item: Send + 'data;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = SliceParIter<'data, T>;
    fn par_iter(&'data self) -> Self::Iter {
        SliceParIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = SliceParIter<'data, T>;
    fn par_iter(&'data self) -> Self::Iter {
        SliceParIter { slice: self }
    }
}

/// `.par_iter_mut()`.
pub trait IntoParallelRefMutIterator<'data> {
    type Item: Send + 'data;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Item = &'data mut T;
    type Iter = SliceParIterMut<'data, T>;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        SliceParIterMut { slice: self }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = &'data mut T;
    type Iter = SliceParIterMut<'data, T>;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        SliceParIterMut { slice: self }
    }
}

/// `.par_chunks(n)`.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> SliceChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> SliceChunks<'_, T> {
        assert!(chunk_size > 0, "par_chunks: chunk size must be > 0");
        SliceChunks {
            slice: self,
            size: chunk_size,
        }
    }
}

/// `.par_chunks_mut(n)`.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> SliceChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> SliceChunksMut<'_, T> {
        assert!(chunk_size > 0, "par_chunks_mut: chunk size must be > 0");
        SliceChunksMut {
            slice: self,
            size: chunk_size,
        }
    }
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// Run both closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() > 1 {
        std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            let rb = hb.join().unwrap_or_else(|payload| resume_unwind(payload));
            (ra, rb)
        })
    } else {
        (a(), b())
    }
}

pub mod prelude {
    pub use super::{
        join, IndexedParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn resolve_num_threads_env_override() {
        assert_eq!(resolve_num_threads(Some("3"), 8), 3);
        assert_eq!(resolve_num_threads(Some(" 2 "), 8), 2);
        assert_eq!(resolve_num_threads(Some("0"), 8), 8); // zero -> hardware
        assert_eq!(resolve_num_threads(Some("nope"), 8), 8);
        assert_eq!(resolve_num_threads(None, 8), 8);
        assert_eq!(resolve_num_threads(None, 0), 1); // never below 1
    }

    #[test]
    fn default_pool_sizing_is_lazy_and_positive() {
        assert!(default_num_threads() >= 1);
        // The OnceLock caches: a second resolution returns the same value.
        assert_eq!(default_num_threads(), default_num_threads());
    }

    #[test]
    fn install_overrides_and_restores() {
        let outer = current_num_threads();
        let got = pool(5).install(|| {
            let inner = current_num_threads();
            let nested = pool(2).install(current_num_threads);
            (inner, nested, current_num_threads())
        });
        assert_eq!(got, (5, 2, 5));
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn install_restores_on_panic() {
        let outer = current_num_threads();
        let result = std::panic::catch_unwind(|| {
            pool(7).install(|| panic!("boom"));
        });
        assert!(result.is_err());
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn map_collect_matches_sequential_at_every_size() {
        for &n in &[0usize, 1, 2, 7, 63, 1000] {
            let input: Vec<u64> = (0..n as u64).collect();
            let expected: Vec<u64> = input.iter().map(|x| x * x + 1).collect();
            let got: Vec<u64> = pool(4).install(|| input.par_iter().map(|x| x * x + 1).collect());
            assert_eq!(got, expected, "n = {n}");
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        // Bitwise f64 determinism: same items, same order, any pool width.
        let input: Vec<f64> = (0..997).map(|i| (i as f64).sin()).collect();
        let run = |threads| -> Vec<f64> {
            pool(threads).install(|| input.par_iter().map(|x| x.exp().sqrt() - 1.0).collect())
        };
        let one = run(1);
        for threads in [2, 3, 4, 8] {
            let many = run(threads);
            assert_eq!(one.len(), many.len());
            for (a, b) in one.iter().zip(&many) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn enumerate_indices_are_global() {
        let input: Vec<i32> = (0..500).collect();
        let got: Vec<(usize, i32)> = pool(4).install(|| {
            input
                .par_iter()
                .enumerate()
                .map(|(i, &v)| (i, v * 2))
                .collect()
        });
        for (i, (idx, v)) in got.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*v, 2 * i as i32);
        }
    }

    #[test]
    fn filter_map_preserves_order() {
        let input: Vec<u32> = (0..1000).collect();
        let expected: Vec<u32> = input.iter().filter(|&&x| x % 3 == 0).copied().collect();
        let got: Vec<u32> = pool(4).install(|| {
            input
                .par_iter()
                .filter_map(|&x| (x % 3 == 0).then_some(x))
                .collect()
        });
        assert_eq!(got, expected);
    }

    #[test]
    fn range_and_vec_into_par_iter() {
        let got: Vec<usize> = pool(3).install(|| (10..30).into_par_iter().map(|i| i * 3).collect());
        assert_eq!(got, (10..30).map(|i| i * 3).collect::<Vec<_>>());
        let owned: Vec<String> = vec!["a".into(), "b".into(), "c".into()];
        let got: Vec<String> = pool(3).install(|| owned.into_par_iter().map(|s| s + "!").collect());
        assert_eq!(got, vec!["a!", "b!", "c!"]);
    }

    #[test]
    fn par_iter_mut_touches_every_item_once() {
        let mut data = vec![1u64; 300];
        pool(4).install(|| data.par_iter_mut().for_each(|x| *x += 1));
        assert!(data.iter().all(|&x| x == 2));
    }

    #[test]
    fn par_chunks_mut_disjoint_in_place_updates() {
        let mut data: Vec<f64> = vec![0.0; 24 * 5];
        pool(4).install(|| {
            data.par_chunks_mut(5).enumerate().for_each(|(i, chunk)| {
                assert_eq!(chunk.len(), 5);
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = (i * 5 + j) as f64;
                }
            });
        });
        for (k, v) in data.iter().enumerate() {
            assert_eq!(*v, k as f64);
        }
    }

    #[test]
    fn for_each_init_scratch_is_per_block() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let data = vec![1u8; 1000];
        pool(4).install(|| {
            data.par_iter().for_each_init(
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    Vec::<u8>::with_capacity(8)
                },
                |scratch, &x| {
                    scratch.clear();
                    scratch.push(x);
                },
            );
        });
        let n = inits.load(Ordering::Relaxed);
        // One scratch per block: far fewer than one per item, at least one.
        assert!(
            (1..=4 * super::BLOCKS_PER_THREAD).contains(&n),
            "inits = {n}"
        );
    }

    #[test]
    fn map_init_equals_map() {
        let input: Vec<u64> = (0..777).collect();
        let got: Vec<u64> = pool(4).install(|| {
            input
                .par_iter()
                .map_init(
                    || 0u64,
                    |acc, &x| {
                        *acc += 1;
                        x * 2
                    },
                )
                .collect()
        });
        assert_eq!(got, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn min_by_picks_earliest_minimum() {
        // Two equal minima: the earliest index must win at any thread count.
        let scores = [5.0f64, 1.0, 7.0, 1.0, 9.0];
        for threads in [1, 2, 4] {
            let got = pool(threads).install(|| {
                scores
                    .par_iter()
                    .enumerate()
                    .map(|(i, &s)| (i, s))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            });
            assert_eq!(got, Some((1, 1.0)), "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::new();
        let got: Vec<u8> = pool(4).install(|| empty.par_iter().map(|&x| x).collect());
        assert!(got.is_empty());
        let one = [42u8];
        let got: Vec<u8> = pool(4).install(|| one.par_iter().map(|&x| x + 1).collect());
        assert_eq!(got, vec![43]);
        assert_eq!(
            pool(4).install(|| (0..0).into_par_iter().min_by(|a: &usize, b| a.cmp(b))),
            None
        );
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let input: Vec<usize> = (0..100).collect();
        let result = std::panic::catch_unwind(|| {
            pool(4).install(|| {
                input.par_iter().for_each(|&x| {
                    if x == 57 {
                        panic!("worker exploded");
                    }
                });
            });
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "worker exploded");
    }

    #[test]
    fn join_returns_both_and_runs_in_any_pool() {
        for threads in [1, 4] {
            let (a, b) =
                pool(threads).install(|| join(|| (0..100u64).sum::<u64>(), || "right".to_string()));
            assert_eq!(a, 4950);
            assert_eq!(b, "right");
        }
    }

    #[test]
    fn join_propagates_panic_from_either_side() {
        for threads in [1, 4] {
            let p = pool(threads);
            assert!(std::panic::catch_unwind(|| {
                p.install(|| join(|| panic!("left"), || 1));
            })
            .is_err());
            assert!(std::panic::catch_unwind(|| {
                p.install(|| join(|| 1, || panic!("right")));
            })
            .is_err());
        }
    }

    #[test]
    fn nested_regions_serialize_and_stay_correct() {
        // A par_iter inside a worker must run inline (width 1), not spawn
        // another default-width set of threads — and still be correct.
        let outer: Vec<usize> = (0..16).collect();
        let got: Vec<(usize, Vec<usize>)> = pool(4).install(|| {
            outer
                .par_iter()
                .map(|&i| {
                    let inner_width = current_num_threads();
                    let inner: Vec<usize> = (0..8).into_par_iter().map(|j| i * 10 + j).collect();
                    (inner_width, inner)
                })
                .collect()
        });
        for (i, (width, inner)) in got.iter().enumerate() {
            // With >1 outer workers the inner regions report width 1. (On a
            // 1-thread default pool the outer region itself is inline and
            // no cap applies — then the installed width shows through.)
            assert!(*width == 1 || *width == 4, "inner width {width}");
            assert_eq!(inner, &(0..8).map(|j| i * 10 + j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn count_terminal() {
        let input: Vec<u32> = (0..1234).collect();
        let n = pool(4).install(|| {
            input
                .par_iter()
                .filter_map(|&x| (x % 2 == 0).then_some(x))
                .count()
        });
        assert_eq!(n, 617);
    }

    #[test]
    fn uneven_chunks_cover_trailing_partial_chunk() {
        let mut data = [0u8; 17];
        pool(4).install(|| {
            data.par_chunks_mut(5).for_each(|chunk| {
                let n = chunk.len() as u8;
                for v in chunk.iter_mut() {
                    *v = n;
                }
            });
        });
        assert_eq!(&data[15..], &[2, 2]);
        assert!(data[..15].iter().all(|&v| v == 5));
    }
}
