//! Vendored stand-in for `rayon` (see `DESIGN.md`, "Offline dependency
//! policy").
//!
//! `par_iter()` / `into_par_iter()` return the ordinary sequential std
//! iterators, so every downstream combinator (`map`, `enumerate`,
//! `filter_map`, `collect`, `min_by`, …) is just the std `Iterator` method
//! with identical semantics and deterministic order. Callers written against
//! real rayon compile unchanged; swapping the real crate back in is a
//! one-line manifest change once a registry is reachable. Data-parallel
//! speedups are an explicit ROADMAP item, not silently faked here.

pub mod prelude {
    /// `.into_par_iter()` — sequential: forwards to [`IntoIterator`].
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `.par_iter()` — sequential: forwards to `(&self).into_iter()`.
    pub trait IntoParallelRefIterator<'data> {
        type Item: 'data;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
    where
        &'data I: IntoIterator,
    {
        type Item = <&'data I as IntoIterator>::Item;
        type Iter = <&'data I as IntoIterator>::IntoIter;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `.par_iter_mut()` — sequential: forwards to `(&mut self).into_iter()`.
    pub trait IntoParallelRefMutIterator<'data> {
        type Item: 'data;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, I: 'data + ?Sized> IntoParallelRefMutIterator<'data> for I
    where
        &'data mut I: IntoIterator,
    {
        type Item = <&'data mut I as IntoIterator>::Item;
        type Iter = <&'data mut I as IntoIterator>::IntoIter;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }

    pub use super::join;
}

/// Sequential `rayon::join`: runs `a` then `b`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}
