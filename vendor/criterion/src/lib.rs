//! Vendored, API-compatible subset of `criterion` (see `DESIGN.md`,
//! "Offline dependency policy").
//!
//! Benches written against real criterion compile and run unchanged:
//! `criterion_group!`/`criterion_main!`, benchmark groups, `BenchmarkId`,
//! `Bencher::iter`. Instead of criterion's statistical sampling machinery
//! this harness times a fixed, small number of iterations per benchmark
//! (configurable per group via `sample_size`, capped by the
//! `CPR_BENCH_ITERS` environment variable) and prints mean wall-clock time
//! per iteration — enough to compare optimizer variants locally and to keep
//! `cargo bench` bounded in CI.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times closures handed over by benchmark bodies.
pub struct Bencher {
    iters: u64,
    /// Mean seconds/iteration of the last `iter` call.
    last_mean: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up iteration, then `iters` timed ones.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.last_mean = start.elapsed().as_secs_f64() / self.iters.max(1) as f64;
    }
}

fn env_iter_cap() -> Option<u64> {
    std::env::var("CPR_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
}

fn run_one(group: &str, id: &BenchmarkId, iters: u64, f: impl FnOnce(&mut Bencher)) {
    let iters = env_iter_cap().map_or(iters, |cap| iters.min(cap)).max(1);
    let mut b = Bencher {
        iters,
        last_mean: 0.0,
    };
    f(&mut b);
    let name = if group.is_empty() {
        id.id.clone()
    } else {
        format!("{group}/{}", id.id)
    };
    println!(
        "{name:<48} {:>12.3} µs/iter ({iters} iters)",
        b.last_mean * 1e6
    );
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Interpreted as the timed iteration count (upstream: sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&self.name, &id.into(), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into(), self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Entry point handed to `criterion_group!` targets.
pub struct Criterion {
    default_sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let n = self.default_sample_size;
        run_one("", &id.into(), n, f);
        self
    }

    /// Upstream parses CLI flags here; the vendored harness accepts and
    /// ignores them so `cargo bench -- <filter>` does not error.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
