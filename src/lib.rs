//! # cpr — Application Performance Modeling via Tensor Completion
//!
//! Umbrella crate re-exporting the full CPR stack, a Rust reproduction of
//! Hutter & Solomonik, *"Application Performance Modeling via Tensor
//! Completion"*, SC 2023 (arXiv:2210.10184).
//!
//! The pieces:
//!
//! * [`tensor`] — dense matrices, decompositions (Cholesky/QR/SVD), dense and
//!   sparse (partially observed) tensors, and the CP factor model.
//! * [`completion`] — tensor-completion optimizers: ALS, CCD, SGD, and the
//!   interior-point alternating Newton method (AMN) for positive models.
//! * [`grid`] — discretization of an application's parameter space onto
//!   regular grids plus multilinear interpolation (Eq. 5 of the paper).
//! * [`core`] — the paper's contribution: the `CprModel` interpolation model
//!   (§5.2), the `CprExtrapolator` (§5.3), error metrics (Table 1), datasets.
//! * [`baselines`] — the nine comparison models of §6.0.4.
//! * [`apps`] — six synthetic application benchmarks standing in for the
//!   paper's Stampede2 measurements (see `DESIGN.md` for the substitution
//!   argument).
//! * [`registry`] — model-fleet serving: a sharded concurrent
//!   `ModelRegistry` keyed by (application × machine × metric), with
//!   hot-swap under live readers, LRU tiering of dense plan caches, and a
//!   fault-tolerant background refit-and-swap pipeline (quality gates,
//!   circuit breakers, deterministic fault injection).
//! * [`store`] — crash-safe durability for the fleet: a checksummed
//!   snapshot store with atomic generation commits, a telemetry
//!   write-ahead log, and a virtual filesystem with deterministic fault
//!   injection (`FaultFs`) that pins the recovery guarantees.
//! * [`server`] — the overload-safe network front end: an HTTP/1.1
//!   server over the registry with admission control, per-request
//!   deadlines, load shedding, exact accounting, graceful drain, and a
//!   deterministic chaos harness (scripted misbehaving clients +
//!   exact-index server fault injection).
//!
//! ## Quickstart
//!
//! One builder, any optimizer, one serving surface. A `CprBuilder` carries
//! a [`core::FitSpec`] (cells, rank, λ, sweeps, seed, loss, optimizer) and
//! fits with any of the five §4.2 optimizers — ALS, AMN, CCD, SGD, or
//! Tucker-ALS; every fitted model (and every baseline family, through the
//! [`core::BaselineModel`] bridge) serves through the same
//! [`core::PerfModel`] trait and round-trips through the versioned binary
//! format.
//!
//! ```
//! use cpr::core::{serialize, CprBuilder, Optimizer, PerfModel};
//! use cpr::apps::{Benchmark, mm::MatMul};
//!
//! // Generate observations of a synthetic GEMM benchmark.
//! let app = MatMul::default();
//! let train = app.sample_dataset(2048, 7);
//! let test = app.sample_dataset(256, 11);
//!
//! // Discretize (m, n, k) onto an 8x8x8 logarithmic grid and fit a rank-4
//! // CP decomposition by ALS tensor completion (the default optimizer).
//! let builder = CprBuilder::new(app.space())
//!     .cells_per_dim(8)
//!     .rank(4)
//!     .regularization(1e-5);
//! let cp_model = builder.fit(&train).unwrap();
//!
//! // The same builder fits the Tucker model class instead — still a
//! // first-class servable, serializable model.
//! let tucker_model = builder
//!     .clone()
//!     .optimizer(Optimizer::TuckerAls)
//!     .fit(&train)
//!     .unwrap();
//!
//! // Both serve through the generic `PerfModel` surface...
//! let models: Vec<Box<dyn PerfModel>> =
//!     vec![Box::new(cp_model), Box::new(tucker_model)];
//! for model in &models {
//!     let mlogq = model.evaluate(&test).mlogq;
//!     assert!(mlogq < 1.0, "{} should fit GEMM well, got {mlogq}", model.name());
//! }
//!
//! // ...and round-trip through the versioned binary format (v2 stores the
//! // optimizer and decomposition tags; v1 files still load).
//! let bytes = models[0].to_bytes().unwrap();
//! let restored = serialize::from_bytes(&bytes).unwrap();
//! let probe = [512.0, 512.0, 512.0];
//! assert_eq!(restored.predict(&probe), models[0].predict(&probe));
//!
//! // Deployment: a fleet registry serves many such models by id, loading
//! // wire bytes without re-fitting — predictions bitwise-equal to serving
//! // the model directly.
//! use cpr::registry::{ModelId, ModelRegistry};
//! let fleet = ModelRegistry::new();
//! let id = ModelId::new("gemm", "stampede2", "time");
//! fleet.load(id.clone(), &bytes).unwrap();
//! assert_eq!(
//!     fleet.predict(&id, &probe).unwrap().to_bits(),
//!     models[0].predict(&probe).to_bits(),
//! );
//! ```
//!
//! Incremental settings keep the same builder: the streaming updater is
//! `core::StreamingCpr::fit(&builder, &data)` (the builder owns its
//! `ParamSpace`; there is no separate `space` argument), then
//! `update(&more)` folds new measurements in with warm-started sweeps.
//!
//! ## Background refit: the self-healing fleet
//!
//! In production the telemetry keeps coming. [`registry::RefitPipeline`]
//! closes the loop: submitted batches are quarantined, refit on worker
//! threads through the streaming warm-start path, **quality-gated**
//! against the live plan on a reserved holdout slice, and hot-swapped
//! atomically — while the registry keeps serving the last-good plan
//! through every failure (panics, timeouts, corrupt candidates, repeated
//! failures tripping a per-model circuit breaker).
//!
//! ```
//! use cpr::apps::{Benchmark, mm::MatMul};
//! use cpr::core::{CprBuilder, StreamingCpr};
//! use cpr::registry::{ModelId, ModelRegistry, PipelineConfig, RefitPipeline};
//! use std::sync::Arc;
//!
//! let app = MatMul::default();
//! let builder = CprBuilder::new(app.space())
//!     .cells_per_dim(6)
//!     .rank(2)
//!     .regularization(1e-6);
//! let trainer = StreamingCpr::fit(&builder, &app.sample_dataset(256, 7)).unwrap();
//!
//! let registry = Arc::new(ModelRegistry::new());
//! let pipeline = RefitPipeline::new(registry.clone(), PipelineConfig::default());
//! let id = ModelId::new("gemm", "stampede2", "time");
//! pipeline.track(id.clone(), trainer); // installs the baseline, accepts telemetry
//!
//! // Telemetry arrives; the refit, holdout gate, and swap happen in the
//! // background while `registry.predict` keeps serving uninterrupted.
//! pipeline.submit(&id, &app.sample_dataset(200, 8)).unwrap();
//! pipeline.wait_idle();
//!
//! let stats = pipeline.stats();
//! assert_eq!(stats.swapped + stats.gate_rejected, 1); // terminally resolved
//! // Whatever the gate decided, serving is bitwise the committed model.
//! let committed = pipeline.tracked_model(&id).unwrap();
//! let probe = [512.0, 512.0, 512.0];
//! assert_eq!(
//!     registry.predict(&id, &probe).unwrap().to_bits(),
//!     committed.predict(&probe).to_bits(),
//! );
//! ```
//!
//! ## Durability: the fleet survives a crash
//!
//! [`store::FleetStore`] makes the fleet outlive its process.
//! `snapshot_into` commits every model as a checksummed record under a
//! generation-numbered manifest (each record written to a temp file, read
//! back and verified, then atomically renamed — so a crash at **any**
//! filesystem operation leaves a complete older generation, never a torn
//! one), and `restore` recovers it into a fresh registry. Here the store
//! runs on [`store::MemFs`]; production uses `FleetStore::open_dir` on a
//! real directory.
//!
//! ```
//! use cpr::apps::{Benchmark, mm::MatMul};
//! use cpr::core::CprBuilder;
//! use cpr::registry::{ModelId, ModelRegistry};
//! use cpr::store::{FleetStore, MemFs};
//! use std::sync::Arc;
//!
//! let app = MatMul::default();
//! let model = CprBuilder::new(app.space())
//!     .cells_per_dim(6)
//!     .rank(2)
//!     .regularization(1e-6)
//!     .fit(&app.sample_dataset(256, 7))
//!     .unwrap();
//!
//! let fleet = ModelRegistry::new();
//! let id = ModelId::new("gemm", "stampede2", "time");
//! fleet.insert(id.clone(), model.clone());
//!
//! // Commit one durable generation, then lose the process.
//! let store = FleetStore::open(Arc::new(MemFs::new())).unwrap();
//! let generation = fleet.snapshot_into(&store).unwrap();
//! assert!(generation >= 1);
//! drop(fleet);
//!
//! // Restart: recover the committed generation and serve it, bitwise.
//! let revived = ModelRegistry::new();
//! let report = revived.restore(&store).unwrap();
//! assert_eq!(report.restored.len(), 1);
//! let probe = [512.0, 512.0, 512.0];
//! assert_eq!(
//!     revived.predict(&id, &probe).unwrap().to_bits(),
//!     model.predict(&probe).to_bits(),
//! );
//! ```
//!
//! The full crash-safety contract — the telemetry write-ahead log, the
//! pipeline's persist-on-gated-swap and [`registry::RefitPipeline::replay`],
//! and the fault-injected kill-point matrices that pin all of it — is
//! documented in `DESIGN.md` ("Durability & recovery").
//!
//! ## Serving over the wire: the network front end
//!
//! [`server::CprServer`] puts the whole stack behind a socket: bounded
//! accept loop, fixed worker pool, an admission controller with explicit
//! shed policies, per-request deadlines (`x-cpr-deadline-ms`) propagated
//! into chunked batch prediction, and a strict accounting identity
//! (`accepted + shed_queue_full + shed_deadline + rejected_malformed ==
//! received`) at every stats snapshot. Answers over the wire are
//! **bitwise equal** to direct registry serving, and
//! [`server::CprServer::drain`] flushes a final durable generation on
//! the way out.
//!
//! ```
//! use cpr::apps::{Benchmark, mm::MatMul};
//! use cpr::core::CprBuilder;
//! use cpr::registry::{ModelId, ModelRegistry};
//! use cpr::server::{chaos::ChaosClient, CprServer, ServerConfig};
//! use std::sync::Arc;
//!
//! let app = MatMul::default();
//! let model = CprBuilder::new(app.space())
//!     .cells_per_dim(6)
//!     .rank(2)
//!     .regularization(1e-6)
//!     .fit(&app.sample_dataset(256, 7))
//!     .unwrap();
//!
//! let registry = Arc::new(ModelRegistry::new());
//! let id = ModelId::new("gemm", "stampede2", "time");
//! registry.insert(id.clone(), model.clone());
//!
//! // Serve on an ephemeral loopback port; one prediction over the wire.
//! let server = CprServer::bind("127.0.0.1:0", Arc::clone(&registry), ServerConfig::default())
//!     .unwrap();
//! let client = ChaosClient::new(server.local_addr());
//! let probe = vec![512.0, 512.0, 512.0];
//! let resp = client.predict(("gemm", "stampede2", "time"), &[probe.clone()], None).unwrap();
//! assert_eq!(resp.status, 200);
//! assert_eq!(resp.predictions()[0].to_bits(), model.predict(&probe).to_bits());
//!
//! // Graceful drain: the accounting identity held, nothing in flight.
//! let report = server.drain();
//! assert!(report.final_stats.identity_holds());
//! assert_eq!(report.final_stats.in_flight, 0);
//! ```
//!
//! ## Observability: one hub, scraped over the wire
//!
//! Every layer — registry, refit pipeline, store, server — reports into
//! one [`obs::MetricsRegistry`]: lock-free counters and log₂-bucket
//! latency histograms, plus a bounded trace of lifecycle events
//! (`swap`, `shed`, `breaker_trip`, `wal_rotate`, `drain`, …). The
//! server exports it as Prometheus text exposition on `GET /metrics`
//! and replays the trace on `GET /events?since=<seq>` — both
//! [`server::admission::Priority::Critical`], answered even under full
//! shed and during drain. Exported `cpr_server_*` totals satisfy the
//! accounting identity in every scrape. See `DESIGN.md`
//! ("Observability").
//!
//! ```
//! use cpr::apps::{Benchmark, mm::MatMul};
//! use cpr::core::CprBuilder;
//! use cpr::registry::{ModelId, ModelRegistry};
//! use cpr::server::{chaos::ChaosClient, CprServer, ServerConfig};
//! use std::sync::Arc;
//!
//! let app = MatMul::default();
//! let model = CprBuilder::new(app.space())
//!     .cells_per_dim(6)
//!     .rank(2)
//!     .regularization(1e-6)
//!     .fit(&app.sample_dataset(256, 7))
//!     .unwrap();
//! let registry = Arc::new(ModelRegistry::new());
//! registry.insert(ModelId::new("gemm", "stampede2", "time"), model);
//!
//! let server = CprServer::bind("127.0.0.1:0", Arc::clone(&registry), ServerConfig::default())
//!     .unwrap();
//! let client = ChaosClient::new(server.local_addr());
//! client.predict(("gemm", "stampede2", "time"), &[vec![512.0, 512.0, 512.0]], None).unwrap();
//!
//! // Scrape the whole stack over the wire.
//! let text = client.metrics().unwrap();
//! assert!(text.contains("# TYPE cpr_server_received_total counter"));
//! assert!(text.contains("# TYPE cpr_registry_serve_us histogram"));
//! assert!(text.contains("cpr_server_accepted_total 1"));
//!
//! // The exported cells ARE the stats cells (a scrape counts itself,
//! // so the predict plus the scrape above have both been accepted).
//! assert_eq!(server.stats().accepted, 2);
//! server.drain();
//! ```

pub use cpr_apps as apps;
pub use cpr_baselines as baselines;
pub use cpr_completion as completion;
pub use cpr_core as core;
pub use cpr_grid as grid;
pub use cpr_obs as obs;
pub use cpr_registry as registry;
pub use cpr_server as server;
pub use cpr_store as store;
pub use cpr_tensor as tensor;
