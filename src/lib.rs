//! # cpr — Application Performance Modeling via Tensor Completion
//!
//! Umbrella crate re-exporting the full CPR stack, a Rust reproduction of
//! Hutter & Solomonik, *"Application Performance Modeling via Tensor
//! Completion"*, SC 2023 (arXiv:2210.10184).
//!
//! The pieces:
//!
//! * [`tensor`] — dense matrices, decompositions (Cholesky/QR/SVD), dense and
//!   sparse (partially observed) tensors, and the CP factor model.
//! * [`completion`] — tensor-completion optimizers: ALS, CCD, SGD, and the
//!   interior-point alternating Newton method (AMN) for positive models.
//! * [`grid`] — discretization of an application's parameter space onto
//!   regular grids plus multilinear interpolation (Eq. 5 of the paper).
//! * [`core`] — the paper's contribution: the `CprModel` interpolation model
//!   (§5.2), the `CprExtrapolator` (§5.3), error metrics (Table 1), datasets.
//! * [`baselines`] — the nine comparison models of §6.0.4.
//! * [`apps`] — six synthetic application benchmarks standing in for the
//!   paper's Stampede2 measurements (see `DESIGN.md` for the substitution
//!   argument).
//!
//! ## Quickstart
//!
//! ```
//! use cpr::core::{CprBuilder, Dataset};
//! use cpr::grid::ParamSpec;
//! use cpr::apps::{Benchmark, mm::MatMul};
//!
//! // Generate observations of a synthetic GEMM benchmark.
//! let app = MatMul::default();
//! let train = app.sample_dataset(2048, 7);
//! let test = app.sample_dataset(256, 11);
//!
//! // Discretize (m, n, k) onto an 8x8x8 logarithmic grid, fit a rank-4 CP
//! // decomposition by tensor completion, and predict.
//! let model = CprBuilder::new(app.space())
//!     .cells_per_dim(8)
//!     .rank(4)
//!     .regularization(1e-5)
//!     .fit(&train)
//!     .unwrap();
//! let mlogq = model.evaluate(&test).mlogq;
//! assert!(mlogq < 1.0, "rank-4 CPR should fit GEMM well, got {mlogq}");
//! ```

pub use cpr_apps as apps;
pub use cpr_baselines as baselines;
pub use cpr_completion as completion;
pub use cpr_core as core;
pub use cpr_grid as grid;
pub use cpr_tensor as tensor;
